//! End-to-end tests of the serving path: correctness against the offline
//! forward, backpressure under overload, graceful drain, artifact
//! cold-start + hot reload, the framing state machines — slow-client
//! dribble reassembly on the event loop, the legacy front end's desync
//! (kept as the regression exhibit), pipelining by request id, the
//! client's timeout resync — and the SLO scheduler: deadline-aware
//! flushing and expiry, interactive-over-batch displacement under
//! quota, shadow/canary mirroring + promotion, and exactly-once replies
//! when shutdown lands mid-overload.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use quq_serve::protocol::{
    decode_response, encode_infer_request, encode_ok_response, tag_response, write_frame,
};
use quq_serve::{
    artifact_state, BackendProvider, Class, Client, Fp32Provider, FrameDecoder, Frontend,
    InferOptions, InferResponse, IntegerProvider, ServeConfig, Server,
};
use quq_store::ArtifactWriter;
use quq_vit::{Backend, Fp32Backend, ModelConfig, Observed, VitModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn test_model() -> Arc<VitModel> {
    Arc::new(VitModel::synthesize(ModelConfig::test_config(), 42))
}

fn images(model: &VitModel, n: usize, seed: u64) -> Vec<quq_tensor::Tensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| quq_vit::synthetic_image(model.config(), &mut rng))
        .collect()
}

#[test]
fn served_logits_match_offline_forward_bitwise() {
    let model = test_model();
    let server = Server::start(
        Arc::clone(&model),
        Arc::new(Fp32Provider),
        ServeConfig::default(),
        "127.0.0.1:0",
    )
    .unwrap();
    let imgs = images(&model, 6, 3);
    let mut client = Client::connect(server.local_addr()).unwrap();
    for img in &imgs {
        let offline = model.forward(img, &mut Fp32Backend::new()).unwrap();
        match client.infer(img).unwrap() {
            InferResponse::Ok { top1, logits } => {
                assert_eq!(logits, offline.data(), "served logits diverge from offline");
                let want = offline
                    .data()
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .unwrap()
                    .0 as u32;
                assert_eq!(top1, want);
            }
            other => panic!("expected Ok, got {other:?}"),
        }
    }
    server.shutdown();
}

#[test]
fn concurrent_clients_are_batched_and_all_answered() {
    let model = test_model();
    let server = Server::start(
        Arc::clone(&model),
        Arc::new(Fp32Provider),
        ServeConfig {
            workers: 2,
            max_batch: 4,
            max_wait: Duration::from_millis(5),
            queue_capacity: 64,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.local_addr();
    let imgs = images(&model, 8, 9);
    let clients: Vec<_> = imgs
        .iter()
        .cloned()
        .map(|img| {
            let model = Arc::clone(&model);
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let offline = model.forward(&img, &mut Fp32Backend::new()).unwrap();
                match c.infer(&img).unwrap() {
                    InferResponse::Ok { logits, .. } => assert_eq!(logits, offline.data()),
                    other => panic!("expected Ok, got {other:?}"),
                }
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }
    server.shutdown();
}

#[test]
fn integer_backend_serves_the_same_bits_as_offline() {
    let model = test_model();
    let calib = quq_vit::Dataset::calibration(model.config(), 4, 1);
    let tables = quq_core::pipeline::calibrate(
        &quq_core::QuqMethod::without_optimization(),
        &model,
        &calib,
        quq_core::pipeline::PtqConfig::full_w8a8(),
    )
    .unwrap();
    let tables = Arc::new(tables);
    let provider = Arc::new(IntegerProvider::new(Arc::clone(&tables)));
    let cache = Arc::clone(provider.cache());
    let server = Server::start(
        Arc::clone(&model),
        provider,
        ServeConfig::default(),
        "127.0.0.1:0",
    )
    .unwrap();
    let imgs = images(&model, 3, 5);
    let mut client = Client::connect(server.local_addr()).unwrap();
    for img in &imgs {
        let mut be = quq_accel::IntegerBackend::new(&tables);
        let offline = model.forward(img, &mut be).unwrap();
        match client.infer(img).unwrap() {
            InferResponse::Ok { logits, .. } => assert_eq!(logits, offline.data()),
            other => panic!("expected Ok, got {other:?}"),
        }
    }
    assert!(!cache.is_empty(), "serving must populate the shared cache");
    server.shutdown();
}

#[test]
fn malformed_and_misshapen_requests_get_error_replies() {
    let model = test_model();
    let server = Server::start(
        Arc::clone(&model),
        Arc::new(Fp32Provider),
        ServeConfig::default(),
        "127.0.0.1:0",
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    // Wrong image shape: an explicit error, not a dead connection.
    let bad = quq_tensor::Tensor::zeros(&[1, 4, 4]);
    match client.infer(&bad).unwrap() {
        InferResponse::Error(msg) => assert!(msg.contains("shape"), "{msg}"),
        other => panic!("expected Error, got {other:?}"),
    }
    // The connection survives and still serves good requests.
    let good = images(&model, 1, 2).remove(0);
    assert!(matches!(
        client.infer(&good).unwrap(),
        InferResponse::Ok { .. }
    ));
    server.shutdown();
}

/// An Fp32 provider that stalls each batch, so tests can fill the
/// admission queue deterministically.
struct SlowProvider {
    delay: Duration,
    batches: AtomicUsize,
}

impl BackendProvider for SlowProvider {
    fn name(&self) -> &'static str {
        "slow-fp32"
    }

    fn with_backend(&self, work: &mut dyn FnMut(&mut dyn Backend)) {
        std::thread::sleep(self.delay);
        self.batches.fetch_add(1, Ordering::SeqCst);
        let mut be = Observed::new(Fp32Backend::new());
        work(&mut be);
    }
}

#[test]
fn overload_sheds_with_overload_reply_and_bounded_queue() {
    let model = test_model();
    let server = Server::start(
        Arc::clone(&model),
        Arc::new(SlowProvider {
            delay: Duration::from_millis(150),
            batches: AtomicUsize::new(0),
        }),
        ServeConfig {
            workers: 1,
            max_batch: 2,
            max_wait: Duration::from_millis(1),
            queue_capacity: 2,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.local_addr();
    let img = images(&model, 1, 4).remove(0);
    // Far more concurrent requests than queue (2) + in-flight batch (2)
    // can hold: the excess must be shed, not buffered.
    let n = 12;
    let replies: Vec<_> = (0..n)
        .map(|_| {
            let img = img.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let first = c.infer(&img).unwrap();
                // Regression: a shed request must produce exactly ONE
                // response — a duplicate (e.g. the bounced job's Reply
                // also answering as it drops) would surface here as an
                // unknown-id error on the reused connection.
                let second = c.infer(&img).unwrap();
                assert!(
                    matches!(second, InferResponse::Ok { .. } | InferResponse::Overloaded),
                    "connection unusable after shed: {second:?}"
                );
                first
            })
        })
        .collect();
    let mut ok = 0usize;
    let mut shed = 0usize;
    for r in replies {
        match r.join().unwrap() {
            InferResponse::Ok { .. } => ok += 1,
            InferResponse::Overloaded => shed += 1,
            other => panic!("unexpected reply {other:?}"),
        }
    }
    assert_eq!(ok + shed, n);
    assert!(
        shed > 0,
        "queue capacity 2 with 12 bursty clients must shed"
    );
    assert!(ok > 0, "some requests must still be served");
    assert!(
        server.queue_depth() <= 2,
        "queue depth is bounded by config"
    );
    server.shutdown();
}

#[test]
fn shutdown_drains_admitted_requests_before_exit() {
    let model = test_model();
    let server = Server::start(
        Arc::clone(&model),
        Arc::new(SlowProvider {
            delay: Duration::from_millis(100),
            batches: AtomicUsize::new(0),
        }),
        ServeConfig {
            workers: 1,
            max_batch: 2,
            max_wait: Duration::from_millis(1),
            queue_capacity: 16,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.local_addr();
    let img = images(&model, 1, 6).remove(0);
    let clients: Vec<_> = (0..6)
        .map(|_| {
            let img = img.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                c.infer(&img)
            })
        })
        .collect();
    // Let the requests get admitted, then shut down while they are queued
    // behind the slow worker.
    std::thread::sleep(Duration::from_millis(60));
    server.shutdown();
    let mut answered = 0usize;
    for c in clients {
        match c.join().unwrap() {
            Ok(InferResponse::Ok { .. }) => answered += 1,
            Ok(InferResponse::Draining) => {} // raced the drain at admission
            Ok(other) => panic!("unexpected reply {other:?}"),
            Err(e) => panic!("client error during drain: {e}"),
        }
    }
    assert!(
        answered > 0,
        "requests admitted before shutdown must be completed, not dropped"
    );
}

/// Calibrates `seed`'s model and saves it as an artifact; returns the
/// model, its tables, and the artifact path.
fn saved_artifact(
    seed: u64,
    tag: &str,
) -> (Arc<VitModel>, Arc<quq_core::pipeline::PtqTables>, PathBuf) {
    let model = Arc::new(VitModel::synthesize(ModelConfig::test_config(), seed));
    let calib = quq_vit::Dataset::calibration(model.config(), 4, 1);
    let tables = quq_core::pipeline::calibrate(
        &quq_core::QuqMethod::without_optimization(),
        &model,
        &calib,
        quq_core::pipeline::PtqConfig::full_w8a8(),
    )
    .unwrap();
    let path = std::env::temp_dir().join(format!(
        "quq-serve-test-{}-{tag}-{seed}.quqm",
        std::process::id()
    ));
    ArtifactWriter::save(&model, &tables, &path).unwrap();
    (model, Arc::new(tables), path)
}

#[test]
fn cold_start_from_artifact_serves_bit_identical_logits() {
    let (model, tables, path) = saved_artifact(42, "coldstart");
    let state = artifact_state(&path, "int").unwrap();
    let server =
        Server::start_with_state(Arc::new(state), ServeConfig::default(), "127.0.0.1:0").unwrap();
    let imgs = images(&model, 3, 5);
    let mut client = Client::connect(server.local_addr()).unwrap();
    for img in &imgs {
        let mut be = quq_accel::IntegerBackend::new(&tables);
        let offline = model.forward(img, &mut be).unwrap();
        match client.infer(img).unwrap() {
            InferResponse::Ok { logits, .. } => assert_eq!(
                logits,
                offline.data(),
                "cold-started server diverges from the calibrated in-memory model"
            ),
            other => panic!("expected Ok, got {other:?}"),
        }
    }
    server.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn reload_hot_swaps_between_artifacts_under_concurrent_load() {
    let (model_a, tables_a, path_a) = saved_artifact(42, "reload-a");
    let (model_b, tables_b, path_b) = saved_artifact(77, "reload-b");

    let img = images(&model_a, 1, 8).remove(0);
    let logits_a = {
        let mut be = quq_accel::IntegerBackend::new(&tables_a);
        model_a.forward(&img, &mut be).unwrap().data().to_vec()
    };
    let logits_b = {
        let mut be = quq_accel::IntegerBackend::new(&tables_b);
        model_b.forward(&img, &mut be).unwrap().data().to_vec()
    };
    assert_ne!(logits_a, logits_b, "the two models must be distinguishable");

    let state = artifact_state(&path_a, "int").unwrap();
    let server = Server::start_with_state(
        Arc::new(state),
        ServeConfig {
            workers: 2,
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            queue_capacity: 64,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.local_addr();

    // Hammer the server from several clients while the swap happens. Every
    // response must be OK and must match exactly one of the two models —
    // never an error, a drop, or a mixed-model result.
    let stop = Arc::new(AtomicBool::new(false));
    let hammers: Vec<_> = (0..4)
        .map(|_| {
            let img = img.clone();
            let stop = Arc::clone(&stop);
            let (logits_a, logits_b) = (logits_a.clone(), logits_b.clone());
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let mut answered = 0usize;
                while !stop.load(Ordering::SeqCst) {
                    match c.infer(&img).unwrap() {
                        InferResponse::Ok { logits, .. } => {
                            assert!(
                                logits == logits_a || logits == logits_b,
                                "response matches neither model during the swap"
                            );
                            answered += 1;
                        }
                        other => panic!("dropped/errored under reload: {other:?}"),
                    }
                }
                answered
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(30));
    let mut admin = Client::connect(addr).unwrap();
    assert_eq!(
        admin.reload(path_b.to_str().unwrap()).unwrap(),
        InferResponse::Reloaded
    );
    std::thread::sleep(Duration::from_millis(30));
    stop.store(true, Ordering::SeqCst);
    let answered: usize = hammers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(answered > 0, "hammer clients must have been served");

    // Post-swap, responses come from model B.
    match admin.infer(&img).unwrap() {
        InferResponse::Ok { logits, .. } => assert_eq!(logits, logits_b),
        other => panic!("expected Ok, got {other:?}"),
    }

    // A failed reload (missing file) reports an error and leaves B serving.
    match admin.reload("/no/such/artifact.quqm").unwrap() {
        InferResponse::Error(msg) => assert!(msg.contains("reload"), "{msg}"),
        other => panic!("expected Error, got {other:?}"),
    }
    match admin.infer(&img).unwrap() {
        InferResponse::Ok { logits, .. } => assert_eq!(logits, logits_b),
        other => panic!("expected Ok, got {other:?}"),
    }

    server.shutdown();
    let _ = std::fs::remove_file(&path_a);
    let _ = std::fs::remove_file(&path_b);
}

/// The full wire bytes (length prefix + payload) of one infer request.
fn wire_request(id: u32, img: &quq_tensor::Tensor) -> Vec<u8> {
    let payload = encode_infer_request(id, img);
    let mut wire = (payload.len() as u32).to_le_bytes().to_vec();
    wire.extend_from_slice(&payload);
    wire
}

/// Reads whole response frames off `stream` until `want` have decoded.
fn read_responses(stream: &mut TcpStream, want: usize) -> Vec<(u32, InferResponse)> {
    let mut dec = FrameDecoder::new();
    let mut got = Vec::new();
    while got.len() < want {
        if let Some(frame) = dec.next_frame().expect("response stream stays framed") {
            got.push(decode_response(&frame).expect("response decodes"));
            continue;
        }
        let n = dec.read_from(stream).expect("read responses");
        assert!(n > 0, "server closed before all responses arrived");
    }
    got
}

#[test]
fn slow_client_dribble_is_reassembled_bit_exactly_by_the_event_loop() {
    // THE tentpole regression: requests delivered in arbitrary dribs and
    // drabs — including stalls long enough that the legacy front end's
    // read timeout fires mid-frame — must decode byte-for-byte and come
    // back with bit-exact logits. Fails against the old stateless
    // `read_frame` loop (see the companion test below).
    let model = test_model();
    let server = Server::start(
        Arc::clone(&model),
        Arc::new(Fp32Provider),
        ServeConfig::default(), // event loop
        "127.0.0.1:0",
    )
    .unwrap();
    let imgs = images(&model, 4, 11);
    let offline: Vec<Vec<f32>> = imgs
        .iter()
        .map(|img| {
            model
                .forward(img, &mut Fp32Backend::new())
                .unwrap()
                .data()
                .to_vec()
        })
        .collect();

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut wire = Vec::new();
    for (i, img) in imgs.iter().enumerate() {
        wire.extend_from_slice(&wire_request(i as u32 + 1, img));
    }
    // Deterministic "hostile" chunking: tiny fragments, frame boundaries
    // straddled, with stalls longer than the legacy POLL_INTERVAL planted
    // right inside the length prefix of the second request.
    let mut lcg: u64 = 0x00DD_B0B5;
    let mut sent = 0usize;
    let first_prefix_of_second = wire_request(1, &imgs[0]).len() + 2;
    while sent < wire.len() {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let n = 1 + (lcg >> 33) as usize % 7;
        let end = (sent + n).min(wire.len());
        stream.write_all(&wire[sent..end]).unwrap();
        stream.flush().unwrap();
        if sent <= first_prefix_of_second && first_prefix_of_second < end {
            // Mid-prefix stall: the legacy handler's 20 ms read timeout
            // fires here and (stateless) drops the partial prefix.
            std::thread::sleep(Duration::from_millis(60));
        } else if lcg & 0xF == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        sent = end;
    }

    let mut got = read_responses(&mut stream, imgs.len());
    got.sort_by_key(|(id, _)| *id);
    for (i, (id, resp)) in got.iter().enumerate() {
        assert_eq!(*id, i as u32 + 1, "every request answered exactly once");
        match resp {
            InferResponse::Ok { logits, .. } => assert_eq!(
                logits, &offline[i],
                "dribbled request {id} lost bit-exactness"
            ),
            other => panic!("request {id} got {other:?}"),
        }
    }
    server.shutdown();
}

#[test]
fn legacy_thread_per_conn_desyncs_on_a_mid_prefix_stall() {
    // The bug the event loop exists to fix, demonstrated on the retained
    // baseline: a frame whose length prefix straddles a stall longer than
    // the handler's read timeout is torn — `read_exact` consumes two
    // prefix bytes, times out, and the stateless retry re-parses from the
    // middle of the frame. The very same byte sequence (split 2 | rest,
    // 60 ms apart) that the event loop reassembles above kills this
    // connection without ever answering.
    let model = test_model();
    let server = Server::start(
        Arc::clone(&model),
        Arc::new(Fp32Provider),
        ServeConfig {
            frontend: Frontend::ThreadPerConn,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let img = images(&model, 1, 11).remove(0);
    let wire = wire_request(1, &img);

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    stream.write_all(&wire[..2]).unwrap();
    stream.flush().unwrap();
    std::thread::sleep(Duration::from_millis(60)); // > POLL_INTERVAL
    stream.write_all(&wire[2..]).unwrap();
    stream.flush().unwrap();

    // The handler misparses prefix bytes [0, 0, OP_INFER, id≈1] as a
    // 16.8 MB frame (> MAX_FRAME) and closes the connection: the client
    // sees EOF or an error, never its logits.
    stream
        .set_read_timeout(Some(Duration::from_secs(3)))
        .unwrap();
    let mut dec = FrameDecoder::new();
    let outcome = loop {
        match dec.next_frame() {
            Ok(Some(frame)) => break Some(decode_response(&frame)),
            Ok(None) => {}
            Err(_) => break None,
        }
        match dec.read_from(&mut stream) {
            Ok(0) => break None, // EOF: connection torn down
            Ok(_) => {}
            Err(_) => break None, // reset / timeout: equally dead
        }
    };
    match outcome {
        None => {} // desync confirmed: the request was never answered
        Some(Ok((_, InferResponse::Ok { .. }))) => {
            panic!("legacy front end unexpectedly survived the mid-frame stall")
        }
        Some(_) => {} // a garbage/error frame is also the desync
    }
    server.shutdown();
}

#[test]
fn thread_per_conn_still_serves_well_behaved_clients() {
    // The baseline must stay a *working* baseline for prompt clients —
    // only slow/fragmented framing desyncs it.
    let model = test_model();
    let server = Server::start(
        Arc::clone(&model),
        Arc::new(Fp32Provider),
        ServeConfig {
            frontend: Frontend::ThreadPerConn,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let img = images(&model, 1, 3).remove(0);
    let offline = model.forward(&img, &mut Fp32Backend::new()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    match client.infer(&img).unwrap() {
        InferResponse::Ok { logits, .. } => assert_eq!(logits, offline.data()),
        other => panic!("expected Ok, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn pipelined_requests_are_answered_out_of_order_by_id() {
    let model = test_model();
    let server = Server::start(
        Arc::clone(&model),
        Arc::new(Fp32Provider),
        ServeConfig {
            workers: 2,
            max_batch: 2,
            max_wait: Duration::from_millis(1),
            queue_capacity: 64,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let imgs = images(&model, 8, 21);
    let offline: Vec<Vec<f32>> = imgs
        .iter()
        .map(|img| {
            model
                .forward(img, &mut Fp32Backend::new())
                .unwrap()
                .data()
                .to_vec()
        })
        .collect();
    let mut client = Client::connect(server.local_addr()).unwrap();
    // All eight in flight on one connection before any response is read.
    let ids: Vec<u32> = imgs.iter().map(|i| client.send_infer(i).unwrap()).collect();
    let mut answered = vec![false; imgs.len()];
    for _ in 0..imgs.len() {
        let (id, resp) = client.recv_response().unwrap();
        let slot = ids.iter().position(|&i| i == id).expect("known id");
        assert!(!answered[slot], "duplicate response for id {id}");
        answered[slot] = true;
        match resp {
            InferResponse::Ok { logits, .. } => assert_eq!(
                logits, offline[slot],
                "pipelined response {id} paired with the wrong request"
            ),
            other => panic!("expected Ok, got {other:?}"),
        }
    }
    assert!(answered.iter().all(|&a| a), "every request answered");
    server.shutdown();
}

#[test]
fn timed_out_response_is_discarded_not_returned_to_the_next_call() {
    // Satellite regression: pre-fix, a response arriving after
    // `set_timeout` expired sat in the socket and was returned as the
    // answer to the *next* infer — a silent off-by-one desync. The mock
    // server below answers request 1 only after the client has given up
    // on it; the client's second call must get response 2, not response 1.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mock = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let mut dec = FrameDecoder::new();
        fn next(dec: &mut FrameDecoder, stream: &mut TcpStream) -> Vec<u8> {
            loop {
                if let Some(frame) = dec.next_frame().unwrap() {
                    return frame;
                }
                assert!(dec.read_from(stream).unwrap() > 0);
            }
        }
        let first = next(&mut dec, &mut stream);
        let id1 = quq_serve::protocol::request_id(&first);
        // Stall past the client's timeout, then answer the abandoned
        // request anyway — the classic slow backend.
        std::thread::sleep(Duration::from_millis(150));
        write_frame(&mut stream, &tag_response(id1, &encode_ok_response(&[1.0]))).unwrap();
        let second = next(&mut dec, &mut stream);
        let id2 = quq_serve::protocol::request_id(&second);
        write_frame(&mut stream, &tag_response(id2, &encode_ok_response(&[2.0]))).unwrap();
    });

    let img = quq_tensor::Tensor::zeros(&[3, 16, 16]);
    let mut client = Client::connect(addr).unwrap();
    client.set_timeout(Some(Duration::from_millis(40))).unwrap();
    let e = client.infer(&img).expect_err("first call must time out");
    assert!(
        matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ),
        "unexpected error {e:?}"
    );
    client.set_timeout(Some(Duration::from_secs(5))).unwrap();
    match client.infer(&img).unwrap() {
        InferResponse::Ok { logits, .. } => assert_eq!(
            logits,
            vec![2.0],
            "second call was answered with the first call's late response"
        ),
        other => panic!("expected Ok, got {other:?}"),
    }
    mock.join().unwrap();
}

#[test]
fn thread_per_conn_reaps_finished_connection_handles() {
    // Satellite regression: the accept loop used to push every handler's
    // JoinHandle into a vec it only emptied at shutdown — tracked state
    // grew with connection *history*. Now finished handlers are reaped as
    // the loop runs, so tracking follows *live* connections.
    let model = test_model();
    let server = Server::start(
        Arc::clone(&model),
        Arc::new(Fp32Provider),
        ServeConfig {
            frontend: Frontend::ThreadPerConn,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.local_addr();
    let img = images(&model, 1, 7).remove(0);
    for _ in 0..40 {
        let mut c = Client::connect(addr).unwrap();
        assert!(matches!(c.infer(&img).unwrap(), InferResponse::Ok { .. }));
        // Dropping the client EOFs the connection; its handler exits.
    }
    // One more accept-loop pass (≤ POLL_INTERVAL apart) reaps them all.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let tracked = server.tracked_connections();
        if tracked <= 4 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "handles never reaped: still tracking {tracked} after 40 closed connections"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    server.shutdown();
}

#[test]
fn connections_after_shutdown_are_refused() {
    let model = test_model();
    let server = Server::start(
        Arc::clone(&model),
        Arc::new(Fp32Provider),
        ServeConfig::default(),
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.local_addr();
    server.shutdown();
    // The listener is gone: either connect fails outright, or the stale
    // socket EOFs/errors on first use. Either way no service.
    if let Ok(mut c) = Client::connect(addr) {
        let img = quq_tensor::Tensor::zeros(&[3, 16, 16]);
        assert!(c.infer(&img).is_err(), "shut-down server must not serve");
    }
}

#[test]
fn load_unload_list_admin_ops_over_the_wire() {
    let (model_a, tables_a, path_a) = saved_artifact(42, "admin-a");
    let (model_b, tables_b, path_b) = saved_artifact(77, "admin-b");
    let img = images(&model_a, 1, 13).remove(0);
    let logits_a = {
        let mut be = quq_accel::IntegerBackend::new(&tables_a);
        model_a.forward(&img, &mut be).unwrap().data().to_vec()
    };
    let logits_b = {
        let mut be = quq_accel::IntegerBackend::new(&tables_b);
        model_b.forward(&img, &mut be).unwrap().data().to_vec()
    };
    assert_ne!(logits_a, logits_b);

    let state = artifact_state(&path_a, "int").unwrap();
    let server =
        Server::start_with_state(Arc::new(state), ServeConfig::default(), "127.0.0.1:0").unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Unregistered name: an explicit error, not a dead connection.
    match client.infer_model("b", &img).unwrap() {
        InferResponse::Error(msg) => assert!(msg.contains("unknown model"), "{msg}"),
        other => panic!("expected Error, got {other:?}"),
    }

    // LOAD registers it; both models then serve their own bits.
    assert_eq!(
        client.load("b", path_b.to_str().unwrap()).unwrap(),
        InferResponse::Reloaded
    );
    match client.infer(&img).unwrap() {
        InferResponse::Ok { logits, .. } => assert_eq!(logits, logits_a),
        other => panic!("expected Ok, got {other:?}"),
    }
    match client.infer_model("b", &img).unwrap() {
        InferResponse::Ok { logits, .. } => assert_eq!(logits, logits_b),
        other => panic!("expected Ok, got {other:?}"),
    }

    // LIST reflects both entries, resident, with request counts.
    match client.list().unwrap() {
        InferResponse::ModelList(snap) => {
            let names: Vec<&str> = snap.models.iter().map(|m| m.name.as_str()).collect();
            assert_eq!(names, vec!["b", "default"], "sorted registry listing");
            assert!(snap.models.iter().all(|m| m.resident));
            assert!(snap.models.iter().all(|m| m.bytes > 0));
            assert!(snap.loads >= 1, "LOAD must count");
            let b = &snap.models[0];
            assert!(b.requests >= 1, "b served at least one request");
        }
        other => panic!("expected ModelList, got {other:?}"),
    }

    // A failed LOAD reports an error and leaves the registry untouched.
    match client.load("c", "/no/such/artifact.quqm").unwrap() {
        InferResponse::Error(msg) => assert!(msg.contains("load"), "{msg}"),
        other => panic!("expected Error, got {other:?}"),
    }

    // UNLOAD drops it; repeat unload and inference both error.
    assert_eq!(client.unload("b").unwrap(), InferResponse::Unloaded);
    match client.unload("b").unwrap() {
        InferResponse::Error(msg) => assert!(msg.contains("unknown model"), "{msg}"),
        other => panic!("expected Error, got {other:?}"),
    }
    match client.infer_model("b", &img).unwrap() {
        InferResponse::Error(msg) => assert!(msg.contains("unknown model"), "{msg}"),
        other => panic!("expected Error, got {other:?}"),
    }
    // The default model is untouched by b's lifecycle.
    match client.infer(&img).unwrap() {
        InferResponse::Ok { logits, .. } => assert_eq!(logits, logits_a),
        other => panic!("expected Ok, got {other:?}"),
    }

    server.shutdown();
    let _ = std::fs::remove_file(&path_a);
    let _ = std::fs::remove_file(&path_b);
}

#[test]
fn registry_hammer_evicts_and_lazily_reloads_with_bit_identical_logits() {
    // The tentpole acceptance test: three models behind a resident-bytes
    // budget that holds roughly one of them, hammered concurrently. LRU
    // eviction and lazy reload churn underneath; every response must stay
    // bit-identical to its model's offline forward — including responses
    // served right after an eviction forced a reload from the artifact.
    let (model_a, tables_a, path_a) = saved_artifact(42, "hammer-a");
    let (model_b, tables_b, path_b) = saved_artifact(77, "hammer-b");
    let (model_c, tables_c, path_c) = saved_artifact(99, "hammer-c");

    let img = images(&model_a, 1, 17).remove(0);
    let offline = |model: &Arc<VitModel>, tables: &Arc<quq_core::pipeline::PtqTables>| {
        let mut be = quq_accel::IntegerBackend::new(tables);
        model.forward(&img, &mut be).unwrap().data().to_vec()
    };
    let logits_a = offline(&model_a, &tables_a);
    let logits_b = offline(&model_b, &tables_b);
    let logits_c = offline(&model_c, &tables_c);
    assert_ne!(logits_a, logits_b);
    assert_ne!(logits_b, logits_c);
    assert_ne!(logits_a, logits_c);

    let largest = [&path_a, &path_b, &path_c]
        .iter()
        .map(|p| std::fs::metadata(p).unwrap().len())
        .max()
        .unwrap();
    let state = artifact_state(&path_a, "int").unwrap();
    let server = Server::start_with_state(
        Arc::new(state),
        ServeConfig {
            workers: 2,
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            queue_capacity: 64,
            // Fits one model (plus slack), never all three: every switch
            // of the hammers' attention forces an eviction + lazy reload.
            max_resident_bytes: largest * 3 / 2,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    server.set_default_source(&path_a);
    server.load_model("b", &path_b).unwrap();
    server.load_model("c", &path_c).unwrap();
    let addr = server.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let hammers: Vec<_> = [
        ("", logits_a.clone()),
        ("b", logits_b.clone()),
        ("c", logits_c.clone()),
    ]
    .into_iter()
    .map(|(name, want)| {
        let img = img.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            let mut answered = 0usize;
            while !stop.load(Ordering::SeqCst) {
                match c.infer_model(name, &img).unwrap() {
                    InferResponse::Ok { logits, .. } => {
                        assert_eq!(
                            logits, want,
                            "model {name:?} served wrong bits under eviction churn"
                        );
                        answered += 1;
                    }
                    other => panic!("model {name:?} dropped/errored: {other:?}"),
                }
            }
            answered
        })
    })
    .collect();

    std::thread::sleep(Duration::from_millis(400));
    stop.store(true, Ordering::SeqCst);
    let answered: Vec<usize> = hammers.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(
        answered.iter().all(|&n| n > 0),
        "every model must have been served: {answered:?}"
    );

    let snap = server.registry_snapshot();
    assert_eq!(snap.models.len(), 3);
    assert!(
        snap.evictions >= 1,
        "budget of ~1 model across 3 hammered models must evict: {snap:?}"
    );
    assert!(
        snap.loads >= snap.evictions,
        "every eviction is followed by a lazy reload under constant traffic"
    );
    // The budget is a high-water mark: at rest at most one model (plus
    // slack) stays resident.
    let resident: u64 = snap
        .models
        .iter()
        .filter(|m| m.resident)
        .map(|m| m.bytes)
        .sum();
    assert!(
        resident <= largest * 3 / 2,
        "resident bytes {resident} exceed the budget {}",
        largest * 3 / 2
    );

    server.shutdown();
    for p in [&path_a, &path_b, &path_c] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn never_reading_pipelined_client_is_paused_not_buffered_unboundedly() {
    // Satellite regression: the per-connection WriteBuf was unbounded — a
    // client that pipelines requests but never reads its responses grew
    // server memory by the full response volume. Now the reactor stops
    // reading from such a connection at `write_high_water` and resumes
    // below half of it; no response is lost, none duplicated.
    use std::os::fd::AsRawFd;

    let model = test_model();
    const HIGH_WATER: usize = 32 * 1024;
    let server = Server::start(
        Arc::clone(&model),
        Arc::new(Fp32Provider),
        ServeConfig {
            write_high_water: HIGH_WATER,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let img = images(&model, 1, 23).remove(0);
    let offline = model
        .forward(&img, &mut Fp32Backend::new())
        .unwrap()
        .data()
        .to_vec();

    let stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    // Clamp the client's kernel receive buffer so unread responses back
    // up into the *server* quickly instead of vanishing into generous
    // default socket buffers.
    quq_serve::sys::set_recv_buffer(stream.as_raw_fd(), 4096).unwrap();

    // A burst of ~40k tiny bogus-opcode requests (each answered with an
    // error frame larger than the request) bracketed by real INFERs:
    // ~1.2 MB of responses against a 32 KiB backlog budget.
    const BOGUS: u32 = 40_000;
    let infer_ids: [u32; 4] = [1, 2, BOGUS + 3, BOGUS + 4];
    let mut wire = Vec::new();
    wire.extend_from_slice(&wire_request(1, &img));
    wire.extend_from_slice(&wire_request(2, &img));
    for id in 3..BOGUS + 3 {
        let mut payload = vec![0xEEu8]; // unknown opcode
        payload.extend_from_slice(&id.to_le_bytes());
        wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        wire.extend_from_slice(&payload);
    }
    wire.extend_from_slice(&wire_request(BOGUS + 3, &img));
    wire.extend_from_slice(&wire_request(BOGUS + 4, &img));
    let total = BOGUS as usize + 4;

    // The writer blocks once the paused server stops draining the socket,
    // so it runs on its own thread while this one watches the server.
    let mut write_half = stream.try_clone().unwrap();
    let writer = std::thread::spawn(move || {
        write_half.write_all(&wire).unwrap();
        write_half.flush().unwrap();
    });

    // The server must hit the high-water mark and pause the connection.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while server.write_pauses() == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "server never paused a never-reading client"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Reading the responses drains the backlog; the reactor unpauses and
    // works through the rest of the burst. Every id must come back
    // exactly once, with the INFER responses still bit-exact.
    let mut stream = stream;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let responses = read_responses(&mut stream, total);
    writer.join().unwrap();

    let mut seen = std::collections::HashSet::new();
    for (id, resp) in &responses {
        assert!(seen.insert(*id), "duplicate response for id {id}");
        if infer_ids.contains(id) {
            match resp {
                InferResponse::Ok { logits, .. } => assert_eq!(
                    logits, &offline,
                    "INFER {id} lost bit-exactness under backpressure"
                ),
                other => panic!("INFER {id} got {other:?}"),
            }
        } else {
            match resp {
                InferResponse::Error(msg) => assert!(msg.contains("unknown opcode"), "{msg}"),
                other => panic!("bogus request {id} got {other:?}"),
            }
        }
    }
    assert_eq!(seen.len(), total, "every request answered exactly once");

    // The whole point: the backlog peak is a couple of frames over the
    // high-water mark, not the ~1.2 MB an unbounded buffer would hold.
    let peak = server.write_backlog_peak();
    assert!(
        peak >= HIGH_WATER as u64,
        "peak {peak} never reached the high-water mark — test lost its teeth"
    );
    assert!(
        peak <= (2 * HIGH_WATER) as u64,
        "write backlog peaked at {peak} bytes; an unbounded buffer leak"
    );
    server.shutdown();
}

#[test]
fn deadline_flushes_a_partial_batch_ahead_of_max_wait() {
    // With a 10 s batching window, a lone request would normally sit
    // until max_wait elapses. A 500 ms deadline must pull the flush
    // forward: the scheduler ships the partial batch at deadline − slack
    // and the reply arrives bit-exact long before the window closes.
    let model = test_model();
    let server = Server::start(
        Arc::clone(&model),
        Arc::new(Fp32Provider),
        ServeConfig {
            workers: 1,
            max_batch: 8,
            max_wait: Duration::from_secs(10),
            queue_capacity: 16,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let img = images(&model, 1, 31).remove(0);
    let offline = model.forward(&img, &mut Fp32Backend::new()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let opts = InferOptions {
        class: Class::Interactive,
        deadline: Some(Duration::from_millis(500)),
        tenant: "slo".into(),
    };
    let t0 = std::time::Instant::now();
    match client.infer_with("", &img, &opts).unwrap() {
        InferResponse::Ok { logits, .. } => assert_eq!(logits, offline.data()),
        other => panic!("expected Ok, got {other:?}"),
    }
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "deadline did not pull the flush forward: waited {elapsed:?} against a 10 s max_wait"
    );
    server.shutdown();
}

#[test]
fn expired_deadline_is_answered_without_running_inference() {
    // A request whose deadline passes while it is queued behind a slow
    // batch must answer DeadlineExceeded and must NOT be computed: the
    // provider's batch counter stays at the two batches the live
    // requests caused.
    let model = test_model();
    let provider = Arc::new(SlowProvider {
        delay: Duration::from_millis(300),
        batches: AtomicUsize::new(0),
    });
    let server = Server::start(
        Arc::clone(&model),
        Arc::clone(&provider) as Arc<dyn BackendProvider>,
        ServeConfig {
            workers: 1,
            max_batch: 1,
            max_wait: Duration::from_millis(1),
            queue_capacity: 16,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.local_addr();
    let img = images(&model, 1, 33).remove(0);

    // Occupy the single worker for 300 ms.
    let blocker = {
        let img = img.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            c.infer(&img).unwrap()
        })
    };
    std::thread::sleep(Duration::from_millis(80)); // blocker is in the worker
    let mut client = Client::connect(addr).unwrap();
    let opts = InferOptions {
        deadline: Some(Duration::from_millis(50)),
        ..InferOptions::default()
    };
    match client.infer_with("", &img, &opts).unwrap() {
        InferResponse::DeadlineExceeded => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert!(matches!(blocker.join().unwrap(), InferResponse::Ok { .. }));
    // The expired request never reached the backend; a healthy follow-up
    // on the same connection does.
    assert_eq!(provider.batches.load(Ordering::SeqCst), 1);
    assert!(matches!(
        client.infer(&img).unwrap(),
        InferResponse::Ok { .. }
    ));
    assert_eq!(provider.batches.load(Ordering::SeqCst), 2);
    server.shutdown();
}

#[test]
fn interactive_in_quota_tenant_displaces_over_quota_batch_traffic() {
    // A hog tenant floods batch-class traffic past its token-bucket
    // quota while the worker is pinned; the queue fills. A compliant
    // tenant's interactive request arriving at a full queue must still
    // be served — it displaces an over-quota batch job, which is shed —
    // and every hog request is answered exactly once (Ok or Overloaded).
    let model = test_model();
    let server = Server::start(
        Arc::clone(&model),
        Arc::new(SlowProvider {
            delay: Duration::from_millis(200),
            batches: AtomicUsize::new(0),
        }),
        ServeConfig {
            workers: 1,
            max_batch: 2,
            max_wait: Duration::from_millis(1),
            queue_capacity: 4,
            tenant_rate: 2.0,
            tenant_burst: 2.0,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.local_addr();
    let img = images(&model, 1, 35).remove(0);
    let offline = model.forward(&img, &mut Fp32Backend::new()).unwrap();

    let mut hog = Client::connect(addr).unwrap();
    let hog_opts = InferOptions {
        class: Class::Batch,
        deadline: None,
        tenant: "hog".into(),
    };
    let n = 10;
    let ids: Vec<u32> = (0..n)
        .map(|_| hog.send_infer_with("", &img, &hog_opts).unwrap())
        .collect();

    // Queue is now at capacity behind the pinned worker; the compliant
    // tenant's interactive request must still get through.
    std::thread::sleep(Duration::from_millis(50));
    let mut well = Client::connect(addr).unwrap();
    let well_opts = InferOptions {
        class: Class::Interactive,
        deadline: None,
        tenant: "well".into(),
    };
    match well.infer_with("", &img, &well_opts).unwrap() {
        InferResponse::Ok { logits, .. } => assert_eq!(
            logits,
            offline.data(),
            "compliant tenant's reply lost bit-exactness under displacement"
        ),
        other => panic!("compliant interactive request not served: {other:?}"),
    }

    let mut ok = 0usize;
    let mut shed = 0usize;
    let mut seen = std::collections::HashSet::new();
    for _ in 0..n {
        let (id, resp) = hog.recv_response().unwrap();
        assert!(ids.contains(&id), "unknown id {id}");
        assert!(seen.insert(id), "duplicate response for id {id}");
        match resp {
            InferResponse::Ok { logits, .. } => {
                assert_eq!(logits, offline.data());
                ok += 1;
            }
            InferResponse::Overloaded => shed += 1,
            other => panic!("hog request {id} got {other:?}"),
        }
    }
    assert_eq!(ok + shed, n, "every hog request answered exactly once");
    assert!(shed > 0, "flooding a 4-deep queue must shed");
    assert!(ok > 0, "in-quota hog traffic must still be served");
    server.shutdown();
}

#[test]
fn shadow_mirrors_deterministically_and_promotes_the_candidate() {
    let (model_a, tables_a, path_a) = saved_artifact(42, "shadow-a");
    let (model_b, tables_b, path_b) = saved_artifact(77, "shadow-b");
    let img = images(&model_a, 1, 37).remove(0);
    let logits_a = {
        let mut be = quq_accel::IntegerBackend::new(&tables_a);
        model_a.forward(&img, &mut be).unwrap().data().to_vec()
    };
    let logits_b = {
        let mut be = quq_accel::IntegerBackend::new(&tables_b);
        model_b.forward(&img, &mut be).unwrap().data().to_vec()
    };
    assert_ne!(logits_a, logits_b);

    let state = artifact_state(&path_a, "int").unwrap();
    let server =
        Server::start_with_state(Arc::new(state), ServeConfig::default(), "127.0.0.1:0").unwrap();
    server.load_model("same", &path_a).unwrap();
    server.load_model("cand", &path_b).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Shadow routing runs after the primary replies; poll the report
    // until the asynchronous compares catch up.
    let wait_mirrored = |client: &mut Client, want: u64| -> quq_serve::ShadowReport {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            match client.shadow_status().unwrap() {
                InferResponse::Shadow(r) if r.mirrored >= want => return r,
                InferResponse::Shadow(r) => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "shadow compares never caught up: {r:?}"
                    );
                    std::thread::sleep(Duration::from_millis(10));
                }
                other => panic!("expected Shadow, got {other:?}"),
            }
        }
    };

    // 25% mirror to a bit-identical candidate: the permille accumulator
    // selects exactly ⌊8/4⌋ = 2 of 8 requests, and every compare agrees.
    match client.shadow_set("same", 0.25).unwrap() {
        InferResponse::Shadow(r) => {
            assert!(r.active);
            assert_eq!((r.name.as_str(), r.permille, r.mirrored), ("same", 250, 0));
        }
        other => panic!("expected Shadow, got {other:?}"),
    }
    for _ in 0..8 {
        match client.infer(&img).unwrap() {
            InferResponse::Ok { logits, .. } => assert_eq!(
                logits, logits_a,
                "primary reply changed while shadowing — mirroring must be zero-impact"
            ),
            other => panic!("expected Ok, got {other:?}"),
        }
    }
    let r = wait_mirrored(&mut client, 2);
    assert_eq!(r.mirrored, 2, "250‰ of 8 requests is exactly 2");
    assert_eq!((r.agree, r.disagree), (2, 0), "identical model must agree");

    // Arming a different candidate resets the counters; a full mirror to
    // a *different* model still leaves every primary reply bit-exact.
    match client.shadow_set("cand", 1.0).unwrap() {
        InferResponse::Shadow(r) => assert_eq!((r.mirrored, r.agree, r.disagree), (0, 0, 0)),
        other => panic!("expected Shadow, got {other:?}"),
    }
    for _ in 0..4 {
        match client.infer(&img).unwrap() {
            InferResponse::Ok { logits, .. } => assert_eq!(logits, logits_a),
            other => panic!("expected Ok, got {other:?}"),
        }
    }
    let r = wait_mirrored(&mut client, 4);
    assert_eq!(r.agree + r.disagree, 4, "every mirrored request compared");

    // Abort disarms without touching the default model.
    match client.shadow_abort().unwrap() {
        InferResponse::Shadow(r) => assert!(!r.active),
        other => panic!("expected Shadow, got {other:?}"),
    }
    assert!(matches!(
        client.infer(&img).unwrap(),
        InferResponse::Ok { ref logits, .. } if *logits == logits_a
    ));

    // Promote installs the candidate as the default model.
    match client.shadow_set("cand", 1.0).unwrap() {
        InferResponse::Shadow(r) => assert!(r.active),
        other => panic!("expected Shadow, got {other:?}"),
    }
    match client.shadow_promote().unwrap() {
        InferResponse::Shadow(r) => assert!(!r.active, "promotion disarms the shadow"),
        other => panic!("expected Shadow, got {other:?}"),
    }
    match client.infer(&img).unwrap() {
        InferResponse::Ok { logits, .. } => {
            assert_eq!(logits, logits_b, "promoted candidate must serve as default")
        }
        other => panic!("expected Ok, got {other:?}"),
    }

    // Error paths: unknown candidate, shadowing the default into itself,
    // promoting with nothing armed.
    assert!(matches!(
        client.shadow_set("nope", 0.5).unwrap(),
        InferResponse::Error(_)
    ));
    assert!(matches!(
        client.shadow_set("", 0.5).unwrap(),
        InferResponse::Error(_)
    ));
    assert!(matches!(
        client.shadow_promote().unwrap(),
        InferResponse::Error(_)
    ));

    server.shutdown();
    let _ = std::fs::remove_file(&path_a);
    let _ = std::fs::remove_file(&path_b);
}

#[test]
fn shutdown_under_overload_answers_every_admitted_request_exactly_once() {
    // Satellite regression for the reactor sweep: a pipelined connection
    // that receives a DRAINING reply (which marks it close-after-flush)
    // used to be closed as soon as its write buffer drained — even with
    // admitted requests still in flight, whose replies were then dropped
    // on the floor. Here shutdown lands while the queue is at capacity
    // and shedding; every request written must still get exactly one
    // reply: Ok (bit-exact), Overloaded, or Draining — never silence,
    // never a duplicate, never a "worker dropped" error.
    let model = test_model();
    let server = Server::start(
        Arc::clone(&model),
        Arc::new(SlowProvider {
            delay: Duration::from_millis(150),
            batches: AtomicUsize::new(0),
        }),
        ServeConfig {
            workers: 1,
            max_batch: 2,
            max_wait: Duration::from_millis(1),
            queue_capacity: 4,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .unwrap();
    let addr = server.local_addr();
    let img = images(&model, 1, 39).remove(0);
    let offline = model.forward(&img, &mut Fp32Backend::new()).unwrap();

    const CONNS: usize = 3;
    const EARLY: u32 = 8; // per conn, written before shutdown
                          // One post-drain request per conn: its DRAINING reply marks the conn
                          // close-after-flush, and a conn with nothing else in flight may then
                          // close immediately — further writes would race the close.
    const LATE: u32 = 1;

    let mut streams: Vec<TcpStream> = (0..CONNS)
        .map(|_| {
            let s = TcpStream::connect(addr).unwrap();
            s.set_nodelay(true).unwrap();
            s
        })
        .collect();
    for (c, stream) in streams.iter_mut().enumerate() {
        for i in 0..EARLY {
            let id = (c as u32) * 100 + i + 1;
            stream.write_all(&wire_request(id, &img)).unwrap();
        }
        stream.flush().unwrap();
    }

    // Let the queue fill and shedding begin behind the pinned worker,
    // then start the drain concurrently (it blocks until complete).
    std::thread::sleep(Duration::from_millis(80));
    let shutdown = std::thread::spawn(move || server.shutdown());
    std::thread::sleep(Duration::from_millis(30));

    // Late requests race the drain: they are answered DRAINING, which
    // marks their connections close-after-flush while earlier admitted
    // requests are still being computed.
    for (c, stream) in streams.iter_mut().enumerate() {
        for i in 0..LATE {
            let id = (c as u32) * 100 + EARLY + i + 1;
            stream.write_all(&wire_request(id, &img)).unwrap();
        }
        stream.flush().unwrap();
    }

    let mut ok = 0usize;
    let mut shed = 0usize;
    let mut draining = 0usize;
    for (c, stream) in streams.iter_mut().enumerate() {
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let per_conn = (EARLY + LATE) as usize;
        let responses = read_responses(stream, per_conn);
        let mut seen = std::collections::HashSet::new();
        for (id, resp) in responses {
            assert!(seen.insert(id), "duplicate response for id {id}");
            let lo = (c as u32) * 100 + 1;
            assert!(
                (lo..lo + EARLY + LATE).contains(&id),
                "response {id} on the wrong connection"
            );
            match resp {
                InferResponse::Ok { logits, .. } => {
                    assert_eq!(logits, offline.data(), "request {id} lost bit-exactness");
                    ok += 1;
                }
                InferResponse::Overloaded => shed += 1,
                InferResponse::Draining => draining += 1,
                other => panic!("request {id} got {other:?}"),
            }
        }
        assert_eq!(seen.len(), per_conn, "connection {c} lost replies");
    }
    shutdown.join().unwrap();
    assert_eq!(ok + shed + draining, CONNS * (EARLY + LATE) as usize);
    assert!(
        ok > 0,
        "admitted requests must be completed through the drain"
    );
    assert!(shed > 0, "a 4-deep queue under this burst must shed");
    assert!(draining > 0, "late requests must see DRAINING");
}
