//! # criterion — offline stand-in for the `criterion` crate
//!
//! The build container cannot reach crates.io, so the workspace vendors the
//! slice of the criterion 0.5 API its benches use: [`Criterion`],
//! [`criterion_group!`]/[`criterion_main!`], benchmark groups with
//! [`Throughput`], and [`Bencher::iter`]/[`Bencher::iter_batched`].
//! Measurement is a plain median-of-samples wall-clock timer — no warm-up
//! modeling, outlier analysis, or HTML reports — but bench files are
//! source-compatible with upstream.

use std::time::Instant;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration input sizing for [`Bencher::iter_batched`] (ignored by this
/// shim; batches are regenerated every iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output.
    SmallInput,
    /// Large setup output.
    LargeInput,
    /// Per-iteration setup.
    PerIteration,
}

/// Times one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Median nanoseconds per iteration, filled by `iter`/`iter_batched`.
    median_ns: f64,
}

impl Bencher {
    fn run_samples(&mut self, mut once: impl FnMut()) {
        // One untimed warm-up iteration, then `samples` timed ones.
        once();
        let mut times: Vec<f64> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                once();
                t0.elapsed().as_nanos() as f64
            })
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        self.median_ns = times[times.len() / 2];
    }

    /// Times `routine` over the sample budget.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        self.run_samples(|| {
            std::hint::black_box(routine());
        });
    }

    /// Times `routine` on fresh inputs built by `setup` (setup excluded from
    /// timing is *not* guaranteed by this shim; keep setups cheap).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        self.run_samples(|| {
            let input = setup();
            std::hint::black_box(routine(input));
        });
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the group's throughput annotation.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(&full, self.throughput, &mut f);
    }

    /// Ends the group (formatting no-op, kept for API compatibility).
    pub fn finish(self) {}
}

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        self.run_one(id, None, &mut f);
    }

    fn run_one(
        &mut self,
        id: &str,
        throughput: Option<Throughput>,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            median_ns: 0.0,
        };
        f(&mut bencher);
        let per_iter = bencher.median_ns;
        match throughput {
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                let rate = n as f64 / (per_iter * 1e-9);
                println!("{id:<40} {:>12.0} ns/iter {rate:>14.0} elem/s", per_iter);
            }
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                let rate = n as f64 / (per_iter * 1e-9);
                println!(
                    "{id:<40} {:>12.0} ns/iter {:>11.1} MiB/s",
                    per_iter,
                    rate / (1 << 20) as f64
                );
            }
            _ => println!("{id:<40} {:>12.0} ns/iter", per_iter),
        }
    }
}

/// Declares a bench group function, mirroring criterion's macro form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; a leading filter argument is
            // accepted and ignored (this shim always runs everything).
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_nonzero_time() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("spin", |b| {
            b.iter(|| (0..1000u64).sum::<u64>());
        });
    }

    #[test]
    fn groups_run_their_benches() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_function("noop", |b| b.iter(|| 1u32 + 1));
        g.finish();
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput);
        });
    }
}
