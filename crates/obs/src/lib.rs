//! Std-only observability for the QUQ runtime.
//!
//! Every layer of the inference stack — the work-stealing pool, the GEMM
//! kernels, the QUB decode path, the weight-decode cache, the integer SFUs
//! and the model forward pass — reports into one process-wide registry of
//! named metrics:
//!
//! * [`Counter`] — a monotonic atomic `u64` (cache hits, steal counts,
//!   MACs, bytes);
//! * [`Histogram`] — a log2-bucketed value distribution with exact count
//!   and sum, used for span latencies in nanoseconds;
//! * [`Span`] — an RAII timer recording its elapsed time into a histogram
//!   on drop.
//!
//! Metrics are keyed by a static name plus an optional [`SiteKey`]
//! (operation label + block index), mirroring the per-layer `OpSite`
//! addressing of the ViT forward pass without depending on any higher
//! crate.
//!
//! **Cost model.** Recording is gated on one process-wide flag read with a
//! single relaxed atomic load ([`enabled`]). While disabled — the default —
//! every hot-path helper ([`add`], [`record`], [`span`], …) is a no-op that
//! neither locks, allocates, nor reads the clock, so instrumented code pays
//! one branch. While enabled, recording takes a registry lock per event;
//! callers only enable it for measurement runs. Instrumentation never
//! touches computed values, so results are bit-identical with metrics on or
//! off (asserted by the throughput benchmark).
//!
//! **Export.** [`snapshot`] captures every metric; [`Snapshot::delta_since`]
//! subtracts an earlier capture to scope a measurement window, and
//! [`Snapshot::to_json`] renders the machine-readable form embedded in
//! `BENCH_throughput.json`.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

pub mod report;

/// Number of log2 buckets a [`Histogram`] holds (`u64` value range).
pub const HIST_BUCKETS: usize = 65;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns the global recorder on or off. Off (the default) makes every
/// recording helper a no-op; already-registered metrics keep their values.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether the global recorder is on (one relaxed atomic load — the entire
/// disabled-path cost of the instrumentation).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Recovers a registry lock even if a panicking thread poisoned it — the
/// registry holds only atomics, so its state is always consistent.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Identifies a per-layer metric site: an operation label plus the global
/// block index it occurs in (`None` for model-level sites). This mirrors
/// the ViT `OpSite` addressing without depending on the model crate.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteKey {
    /// Global block index, or `None` for stem/head-level operations.
    pub block: Option<usize>,
    /// Operation label (e.g. `"Qkv"`, `"Softmax"`).
    pub op: Cow<'static, str>,
}

impl SiteKey {
    /// Model-level site (no block index).
    pub fn global(op: impl Into<Cow<'static, str>>) -> Self {
        Self {
            block: None,
            op: op.into(),
        }
    }

    /// Site inside block `block`.
    pub fn in_block(block: usize, op: impl Into<Cow<'static, str>>) -> Self {
        Self {
            block: Some(block),
            op: op.into(),
        }
    }

    /// Human-readable label: `block3.Qkv` or `Head`.
    pub fn label(&self) -> String {
        match self.block {
            Some(b) => format!("block{b}.{}", self.op),
            None => self.op.to_string(),
        }
    }
}

/// A monotonic atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log2-bucketed distribution of `u64` values with exact count and sum.
///
/// Bucket `0` counts the value `0`; bucket `i ≥ 1` counts values in
/// `[2^{i−1}, 2^i)`. Latency spans record nanoseconds, so bucket `i`
/// roughly means "took about `2^i` ns".
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// The log2 bucket index a value falls into.
fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

type MetricKey = (&'static str, Option<SiteKey>);

/// The process-wide metric registry. Metrics are created on first use and
/// live for the process lifetime, so handles never dangle and snapshot
/// deltas are always well-defined.
#[derive(Default)]
struct Registry {
    counters: Mutex<BTreeMap<MetricKey, Arc<Counter>>>,
    hists: Mutex<BTreeMap<MetricKey, Arc<Histogram>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Returns (registering on first use) the site-less counter `name`.
pub fn counter(name: &'static str) -> Arc<Counter> {
    counter_entry(name, None)
}

/// Returns (registering on first use) the counter `name` at `site`.
pub fn counter_at(name: &'static str, site: SiteKey) -> Arc<Counter> {
    counter_entry(name, Some(site))
}

fn counter_entry(name: &'static str, site: Option<SiteKey>) -> Arc<Counter> {
    let mut map = lock_unpoisoned(&registry().counters);
    Arc::clone(map.entry((name, site)).or_default())
}

/// Returns (registering on first use) the site-less histogram `name`.
pub fn histogram(name: &'static str) -> Arc<Histogram> {
    histogram_entry(name, None)
}

/// Returns (registering on first use) the histogram `name` at `site`.
pub fn histogram_at(name: &'static str, site: SiteKey) -> Arc<Histogram> {
    histogram_entry(name, Some(site))
}

fn histogram_entry(name: &'static str, site: Option<SiteKey>) -> Arc<Histogram> {
    let mut map = lock_unpoisoned(&registry().hists);
    Arc::clone(map.entry((name, site)).or_default())
}

/// Adds `n` to counter `name` — no-op while the recorder is disabled.
#[inline]
pub fn add(name: &'static str, n: u64) {
    if enabled() {
        counter(name).add(n);
    }
}

/// Adds `n` to counter `name` at `site` — no-op while disabled. The site is
/// built lazily so the disabled path never allocates.
#[inline]
pub fn add_at(name: &'static str, site: impl FnOnce() -> SiteKey, n: u64) {
    if enabled() {
        counter_at(name, site()).add(n);
    }
}

/// Records `value` into histogram `name` — no-op while disabled.
#[inline]
pub fn record(name: &'static str, value: u64) {
    if enabled() {
        histogram(name).record(value);
    }
}

/// Records `value` into histogram `name` at `site` — no-op while disabled.
/// The site is built lazily so the disabled path never allocates.
#[inline]
pub fn record_at(name: &'static str, site: impl FnOnce() -> SiteKey, value: u64) {
    if enabled() {
        histogram_at(name, site()).record(value);
    }
}

/// An RAII timer: records its elapsed nanoseconds into the histogram it was
/// opened against when dropped. A span opened while the recorder is
/// disabled holds no clock reading and records nothing.
#[must_use = "a span records on drop; binding it to _ drops it immediately"]
#[derive(Debug)]
pub struct Span {
    start: Option<Instant>,
    name: &'static str,
    site: Option<SiteKey>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            let nanos = t0.elapsed().as_nanos() as u64;
            histogram_entry(self.name, self.site.take()).record(nanos);
        }
    }
}

/// Opens a latency span recording into the site-less histogram `name`.
#[inline]
pub fn span(name: &'static str) -> Span {
    Span {
        start: enabled().then(Instant::now),
        name,
        site: None,
    }
}

/// Opens a latency span at `site`. The site is built lazily so the disabled
/// path never allocates.
#[inline]
pub fn span_at(name: &'static str, site: impl FnOnce() -> SiteKey) -> Span {
    let start = enabled().then(Instant::now);
    Span {
        site: start.is_some().then(site),
        start,
        name,
    }
}

/// Point-in-time value of one counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnap {
    /// Metric name.
    pub name: String,
    /// Site label (`block3.Qkv`), if the counter is site-scoped.
    pub site: Option<String>,
    /// Counter value.
    pub value: u64,
}

/// Point-in-time state of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnap {
    /// Metric name.
    pub name: String,
    /// Site label, if the histogram is site-scoped.
    pub site: Option<String>,
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values (nanoseconds for latency spans).
    pub sum: u64,
    /// Per-log2-bucket observation counts.
    pub buckets: Vec<u64>,
}

impl HistSnap {
    /// Approximate `q`-quantile from the log2 buckets: the upper bound of
    /// the bucket containing the `q`-th observation (0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i.min(63) };
            }
        }
        u64::MAX
    }
}

/// A consistent-enough capture of every registered metric. Counters and
/// histograms are read without stopping writers, so a snapshot taken during
/// a run is approximate; taken at a quiescent point it is exact.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// All registered counters, in (name, site) order.
    pub counters: Vec<CounterSnap>,
    /// All registered histograms, in (name, site) order.
    pub hists: Vec<HistSnap>,
}

/// Captures every registered metric.
pub fn snapshot() -> Snapshot {
    let counters = lock_unpoisoned(&registry().counters)
        .iter()
        .map(|((name, site), c)| CounterSnap {
            name: (*name).to_string(),
            site: site.as_ref().map(SiteKey::label),
            value: c.get(),
        })
        .collect();
    let hists = lock_unpoisoned(&registry().hists)
        .iter()
        .map(|((name, site), h)| HistSnap {
            name: (*name).to_string(),
            site: site.as_ref().map(SiteKey::label),
            count: h.count(),
            sum: h.sum(),
            buckets: h.bucket_counts(),
        })
        .collect();
    Snapshot { counters, hists }
}

impl Snapshot {
    /// Subtracts `earlier` from `self` key-by-key (saturating), scoping the
    /// metrics to the window between the two captures. Metrics absent from
    /// `earlier` (registered later) pass through unchanged.
    pub fn delta_since(&self, earlier: &Snapshot) -> Snapshot {
        let prev_c: BTreeMap<(&str, Option<&str>), u64> = earlier
            .counters
            .iter()
            .map(|c| ((c.name.as_str(), c.site.as_deref()), c.value))
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|c| CounterSnap {
                name: c.name.clone(),
                site: c.site.clone(),
                value: c.value.saturating_sub(
                    prev_c
                        .get(&(c.name.as_str(), c.site.as_deref()))
                        .copied()
                        .unwrap_or(0),
                ),
            })
            .collect();
        let prev_h: BTreeMap<(&str, Option<&str>), &HistSnap> = earlier
            .hists
            .iter()
            .map(|h| ((h.name.as_str(), h.site.as_deref()), h))
            .collect();
        let hists = self
            .hists
            .iter()
            .map(|h| {
                let prev = prev_h.get(&(h.name.as_str(), h.site.as_deref()));
                HistSnap {
                    name: h.name.clone(),
                    site: h.site.clone(),
                    count: h.count.saturating_sub(prev.map_or(0, |p| p.count)),
                    sum: h.sum.saturating_sub(prev.map_or(0, |p| p.sum)),
                    buckets: h
                        .buckets
                        .iter()
                        .enumerate()
                        .map(|(i, &b)| {
                            b.saturating_sub(prev.and_then(|p| p.buckets.get(i)).map_or(0, |&v| v))
                        })
                        .collect(),
                }
            })
            .collect();
        Snapshot { counters, hists }
    }

    /// Total of counter `name` across all sites.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|c| c.name == name)
            .map(|c| c.value)
            .sum()
    }

    /// Summed histogram value (nanoseconds for spans) of `name` across all
    /// sites.
    pub fn hist_sum(&self, name: &str) -> u64 {
        self.hists
            .iter()
            .filter(|h| h.name == name)
            .map(|h| h.sum)
            .sum()
    }

    /// The site labels under which histogram `name` has observations.
    pub fn hist_sites(&self, name: &str) -> Vec<String> {
        self.hists
            .iter()
            .filter(|h| h.name == name && h.count > 0)
            .filter_map(|h| h.site.clone())
            .collect()
    }

    /// Renders the snapshot as JSON: counters as `{name, site?, value}`,
    /// histograms as `{name, site?, count, sum, p50, p99}` (quantiles are
    /// log2-bucket upper bounds). Zero-valued entries are skipped to keep
    /// embedded reports small.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\": [");
        let mut first = true;
        for c in self.counters.iter().filter(|c| c.value > 0) {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!("{{\"name\": {}", json_string(&c.name)));
            if let Some(site) = &c.site {
                out.push_str(&format!(", \"site\": {}", json_string(site)));
            }
            out.push_str(&format!(", \"value\": {}}}", c.value));
        }
        out.push_str("], \"histograms\": [");
        let mut first = true;
        for h in self.hists.iter().filter(|h| h.count > 0) {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!("{{\"name\": {}", json_string(&h.name)));
            if let Some(site) = &h.site {
                out.push_str(&format!(", \"site\": {}", json_string(site)));
            }
            out.push_str(&format!(
                ", \"count\": {}, \"sum\": {}, \"p50\": {}, \"p99\": {}}}",
                h.count,
                h.sum,
                h.quantile(0.5),
                h.quantile(0.99)
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that toggle the global recorder flag.
    fn flag_guard() -> MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        lock_unpoisoned(&GUARD)
    }

    #[test]
    fn bucket_of_is_log2_with_zero_bucket() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_counts_sum_and_quantiles() {
        let h = Histogram::default();
        for v in [0u64, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1106);
        let snap = HistSnap {
            name: "t".into(),
            site: None,
            count: h.count(),
            sum: h.sum(),
            buckets: h.bucket_counts(),
        };
        // p50 falls in the bucket holding the 3rd observation (value 2).
        assert_eq!(snap.quantile(0.5), 4);
        // p99 falls in the bucket of the largest value (1000 < 1024).
        assert_eq!(snap.quantile(0.99), 1024);
        assert_eq!(snap.quantile(0.0), 0);
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let _g = flag_guard();
        set_enabled(false);
        let before = counter("test.disabled").get();
        add("test.disabled", 5);
        record("test.disabled.hist", 7);
        let s = span("test.disabled.span");
        assert!(s.start.is_none());
        drop(s);
        assert_eq!(counter("test.disabled").get(), before);
        assert_eq!(histogram("test.disabled.hist").count(), 0);
        assert_eq!(histogram("test.disabled.span").count(), 0);
    }

    #[test]
    fn enabled_recorder_counts_and_times() {
        let _g = flag_guard();
        set_enabled(true);
        add("test.enabled", 2);
        add("test.enabled", 3);
        {
            let _s = span_at("test.enabled.span", || SiteKey::in_block(4, "Qkv"));
        }
        set_enabled(false);
        assert_eq!(counter("test.enabled").get(), 5);
        let h = histogram_at("test.enabled.span", SiteKey::in_block(4, "Qkv"));
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn site_labels_match_op_site_display() {
        assert_eq!(SiteKey::in_block(3, "Qkv").label(), "block3.Qkv");
        assert_eq!(SiteKey::global("Head").label(), "Head");
    }

    #[test]
    fn snapshot_delta_scopes_a_window() {
        let _g = flag_guard();
        set_enabled(true);
        counter("test.delta").add(10);
        histogram("test.delta.h").record(100);
        let first = snapshot();
        counter("test.delta").add(7);
        histogram("test.delta.h").record(200);
        let delta = snapshot().delta_since(&first);
        set_enabled(false);
        assert_eq!(delta.counter_total("test.delta"), 7);
        let h = delta.hists.iter().find(|h| h.name == "test.delta.h");
        assert_eq!(h.map(|h| (h.count, h.sum)), Some((1, 200)));
    }

    #[test]
    fn json_export_is_well_formed() {
        let snap = Snapshot {
            counters: vec![
                CounterSnap {
                    name: "a\"b".into(),
                    site: None,
                    value: 3,
                },
                CounterSnap {
                    name: "zero".into(),
                    site: None,
                    value: 0,
                },
            ],
            hists: vec![HistSnap {
                name: "h".into(),
                site: Some("block0.Qkv".into()),
                count: 2,
                sum: 300,
                buckets: {
                    let mut b = vec![0u64; HIST_BUCKETS];
                    b[8] = 2;
                    b
                },
            }],
        };
        let json = snap.to_json();
        assert!(json.contains("\"a\\\"b\""), "{json}");
        assert!(!json.contains("zero"), "zero-valued entries skipped");
        assert!(json.contains("\"site\": \"block0.Qkv\""), "{json}");
        // Balanced braces/brackets as a cheap well-formedness probe.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "{json}"
            );
        }
    }

    #[test]
    fn counter_registry_returns_same_instance() {
        let a = counter("test.same");
        let b = counter("test.same");
        assert!(Arc::ptr_eq(&a, &b));
        let c = counter_at("test.same", SiteKey::global("X"));
        assert!(!Arc::ptr_eq(&a, &c));
    }
}
