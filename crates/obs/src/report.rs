//! Human-readable reports over metric [`Snapshot`] deltas.
//!
//! The per-op breakdowns that used to be duplicated between
//! `examples/integer_inference.rs` and the throughput benchmark live here
//! once: total GEMM span time, the slowest op sites, and a short text
//! summary of cache and SFU activity. Every consumer of a measurement
//! window (`throughput`, `loadgen`, the integer-inference example) formats
//! it the same way.

use crate::Snapshot;
use std::fmt::Write as _;

/// Summed GEMM span time (seconds) in a metrics window: every `linear`,
/// `matmul`, and `matmul_nt` dispatched through an observing backend.
pub fn gemm_seconds(delta: &Snapshot) -> f64 {
    let nanos =
        delta.hist_sum("op.linear") + delta.hist_sum("op.matmul") + delta.hist_sum("op.matmul_nt");
    nanos as f64 * 1e-9
}

/// One row of [`slowest_sites`]: an op histogram aggregated per site.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteRow {
    /// Metric name (`op.linear`, `op.softmax`, …).
    pub name: String,
    /// Site label (`block3.Qkv`, `Head`, …); `None` for un-sited spans.
    pub site: Option<String>,
    /// Total span time in nanoseconds.
    pub sum_nanos: u64,
}

/// The `limit` slowest `op.*` sites by total span time, descending.
pub fn slowest_sites(delta: &Snapshot, limit: usize) -> Vec<SiteRow> {
    let mut rows: Vec<SiteRow> = delta
        .hists
        .iter()
        .filter(|h| h.name.starts_with("op.") && h.count > 0)
        .map(|h| SiteRow {
            name: h.name.clone(),
            site: h.site.clone(),
            sum_nanos: h.sum,
        })
        .collect();
    rows.sort_by(|a, b| {
        b.sum_nanos
            .cmp(&a.sum_nanos)
            .then_with(|| a.site.cmp(&b.site))
            .then_with(|| a.name.cmp(&b.name))
    });
    rows.truncate(limit);
    rows
}

/// Renders [`slowest_sites`] as the aligned table the example and the bench
/// bins print, one row per line, `indent` prepended to each.
pub fn slowest_sites_table(delta: &Snapshot, limit: usize, indent: &str) -> String {
    let mut out = String::new();
    for row in slowest_sites(delta, limit) {
        let _ = writeln!(
            out,
            "{indent}{:>22}  {:<14} {:.4}s",
            row.site.as_deref().unwrap_or("-"),
            row.name,
            row.sum_nanos as f64 * 1e-9
        );
    }
    out
}

/// Renders the standard measurement-window summary: GEMM totals, weight
/// decode-cache hit/miss, and SFU kernel time. Each line starts with
/// `indent`.
pub fn window_summary(delta: &Snapshot, indent: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{indent}GEMM: {:.3}s across ops ({} MACs, {} bytes moved)",
        gemm_seconds(delta),
        delta.counter_total("gemm.macs"),
        delta.counter_total("gemm.bytes"),
    );
    let _ = writeln!(
        out,
        "{indent}weight-decode cache: {} hits / {} misses",
        delta.counter_total("cache.weight_qub.hit"),
        delta.counter_total("cache.weight_qub.miss"),
    );
    let _ = writeln!(
        out,
        "{indent}SFU: softmax {:.3}s, gelu {:.3}s, layer_norm {:.3}s",
        delta.hist_sum("sfu.softmax") as f64 * 1e-9,
        delta.hist_sum("sfu.gelu") as f64 * 1e-9,
        delta.hist_sum("sfu.layer_norm") as f64 * 1e-9,
    );
    let _ = writeln!(
        out,
        "{indent}GEMM tuner: {} searches ({:.1} ms) / {} memo hits",
        delta.counter_total("tune.searches"),
        delta.hist_sum("tune.search") as f64 * 1e-6,
        delta.counter_total("tune.hits"),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HistSnap, Snapshot};

    fn hist(name: &str, site: Option<&str>, sum: u64) -> HistSnap {
        HistSnap {
            name: name.to_string(),
            site: site.map(str::to_string),
            count: 1,
            sum,
            buckets: vec![],
        }
    }

    fn sample() -> Snapshot {
        Snapshot {
            counters: vec![
                crate::CounterSnap {
                    name: "tune.searches".to_string(),
                    site: None,
                    value: 3,
                },
                crate::CounterSnap {
                    name: "tune.hits".to_string(),
                    site: None,
                    value: 41,
                },
            ],
            hists: vec![
                hist("op.linear", Some("block0.Qkv"), 5_000_000_000),
                hist("op.linear", Some("block1.Fc1"), 2_000_000_000),
                hist("op.softmax", Some("block0.Softmax"), 3_000_000_000),
                hist("op.matmul_nt", Some("block0.QkMatmul"), 1_000_000_000),
                hist("sfu.softmax", None, 500),
                hist("tune.search", None, 2_500_000),
            ],
        }
    }

    #[test]
    fn gemm_seconds_sums_only_gemm_ops() {
        let s = sample();
        // linear 5+2, matmul_nt 1; softmax excluded.
        assert!((gemm_seconds(&s) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn slowest_sites_sorted_and_limited() {
        let rows = slowest_sites(&sample(), 2);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].site.as_deref(), Some("block0.Qkv"));
        assert_eq!(rows[1].site.as_deref(), Some("block0.Softmax"));
        // Non-op histograms never appear.
        assert!(slowest_sites(&sample(), 10)
            .iter()
            .all(|r| r.name.starts_with("op.")));
    }

    #[test]
    fn tables_render_one_line_per_row() {
        let table = slowest_sites_table(&sample(), 3, "  ");
        assert_eq!(table.lines().count(), 3);
        assert!(table.contains("block0.Qkv"));
        let summary = window_summary(&sample(), "  ");
        assert_eq!(summary.lines().count(), 4);
        assert!(summary.contains("GEMM: 8.000s"));
        assert!(summary.contains("GEMM tuner: 3 searches (2.5 ms) / 41 memo hits"));
    }
}
