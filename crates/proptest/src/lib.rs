//! # proptest — offline stand-in for the `proptest` crate
//!
//! The build container cannot reach crates.io, so the workspace vendors the
//! slice of the proptest API its test suites use: the [`proptest!`] macro
//! with `pattern in strategy` arguments, range/tuple/vec/one-of strategies,
//! [`any`], `prop_assert*`, and [`prop_assume!`]. Semantics are simplified —
//! cases are drawn from a deterministic per-test RNG and failures are *not*
//! shrunk — but property bodies, strategy expressions, and configuration
//! syntax are source-compatible with upstream, so swapping the registry
//! crate back in later requires no test edits.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (`ProptestConfig` upstream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases drawn per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream default.
        Self { cases: 256 }
    }
}

/// Outcome of one property case (used by the generated test body).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseOutcome {
    /// All assertions held.
    Pass,
    /// A `prop_assume!` rejected the inputs; the case does not count.
    Skip,
}

/// Builds the deterministic RNG for a named property: reproducible across
/// runs, different across properties.
pub fn test_rng(name: &str) -> StdRng {
    // FNV-1a over the property name.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_strategy!(i32, i64, u32, u64, usize);

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut StdRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Types drawable from their full value range via [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}

arbitrary_via_gen!(u32, u64, bool);

impl Arbitrary for usize {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<u64>() as usize
    }
}

/// Strategy over a type's full value range (`any::<T>()` upstream).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns a strategy drawing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Weighted union of same-typed strategies (`prop_oneof!` upstream).
#[derive(Debug, Clone)]
pub struct OneOf<S> {
    arms: Vec<(u32, S)>,
    total: u32,
}

impl<S> OneOf<S> {
    /// Builds a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, S)>) -> Self {
        let total: u32 = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Self { arms, total }
    }
}

impl<S: Strategy> Strategy for OneOf<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> S::Value {
        let mut pick = rng.gen_range(0..self.total as u64) as u32;
        for (w, s) in &self.arms {
            if pick < *w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total");
    }
}

/// Element-count specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        Self {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

/// Strategy producing `Vec`s of another strategy's values.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.size.lo..self.size.hi_exclusive.max(self.size.lo + 1));
        (0..n).map(|_| self.elem.sample(rng)).collect()
    }
}

pub mod prop {
    //! The `prop` helper namespace (`proptest::prop` upstream re-exports).

    pub mod collection {
        //! Collection strategies.

        use super::super::{SizeRange, Strategy, VecStrategy};

        /// Strategy for `Vec`s with `size` elements drawn from `elem`.
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }
    }
}

/// Asserts a condition inside a property (no shrinking; panics like
/// `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return $crate::CaseOutcome::Skip;
        }
    };
}

/// Weighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$(($weight, $strategy)),+])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$((1u32, $strategy)),+])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs through the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::test_rng(stringify!($name));
            for case in 0..config.cases {
                $(let $pat = $crate::Strategy::sample(&($strategy), &mut rng);)*
                let outcome = (|| -> $crate::CaseOutcome {
                    $body
                    $crate::CaseOutcome::Pass
                })();
                let _ = (case, outcome);
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

pub mod prelude {
    //! Everything a property-test file needs (`proptest::prelude` upstream).

    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    pub use crate::{Any, Arbitrary, CaseOutcome, OneOf, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = crate::test_rng("ranges");
        for _ in 0..1000 {
            let x = Strategy::sample(&(1.0f32..2.0), &mut rng);
            assert!((1.0..2.0).contains(&x));
            let n = Strategy::sample(&(3u32..=5), &mut rng);
            assert!((3..=5).contains(&n));
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = crate::test_rng("vec");
        let s = prop::collection::vec(0.0f32..1.0, 2..10);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..10).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_uses_every_arm() {
        let mut rng = crate::test_rng("oneof");
        let s = prop_oneof![1 => 0.0f32..1.0, 1 => 10.0f32..11.0];
        let (mut lo, mut hi) = (0, 0);
        for _ in 0..500 {
            let v = s.sample(&mut rng);
            if v < 5.0 {
                lo += 1;
            } else {
                hi += 1;
            }
        }
        assert!(lo > 100 && hi > 100, "lo {lo}, hi {hi}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn generated_properties_run(x in 0.0f32..1.0, n in 1usize..8) {
            prop_assume!(n > 0);
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert_eq!(n, n);
        }
    }
}
