//! FQ-ViT-like baseline (Lin et al.) — fully quantized ViT with row-wise
//! weights and log2-quantized attention.
//!
//! The published method combines (a) *Power-of-Two Factor* per-channel
//! quantization for LayerNorm inputs / row-wise weight scales, and (b)
//! *Log-Int-Softmax*: post-Softmax attention probabilities quantized on a
//! log2 grid. We reproduce both functionally:
//!
//! * weights: per-output-row min–max uniform scales ([`RowWiseUniform`]) —
//!   the scheme the QUQ paper notes "incurs additional memory overhead and
//!   complexity … and may not be supported by existing architectures";
//! * post-Softmax operands (`PvMatmul` first input): [`Log2Quantizer`];
//! * every other activation: per-tensor min–max uniform.

use quq_core::calib::{Operand, ParamKey};
use quq_core::quantizer::{FittedQuantizer, QuantMethod};
use quq_core::UniformQuantizer;
use quq_tensor::Tensor;
use quq_vit::OpKind;

/// Per-output-row uniform quantization of a weight matrix `[out, in]`.
#[derive(Debug, Clone, PartialEq)]
pub struct RowWiseUniform {
    rows: Vec<UniformQuantizer>,
    cols: usize,
    bits: u32,
}

impl RowWiseUniform {
    /// Fits one min–max uniform quantizer per row.
    ///
    /// # Panics
    ///
    /// Panics when `w` is not rank 2.
    pub fn fit(w: &Tensor, bits: u32) -> Self {
        assert_eq!(w.rank(), 2, "row-wise quantization needs a matrix");
        let cols = w.shape()[1];
        let rows = w
            .data()
            .chunks(cols)
            .map(|row| UniformQuantizer::fit_min_max(bits, row))
            .collect();
        Self { rows, cols, bits }
    }

    /// Number of distinct row scales (the extra parameter memory).
    pub fn num_scales(&self) -> usize {
        self.rows.len()
    }
}

impl FittedQuantizer for RowWiseUniform {
    fn fake_quantize(&self, t: &Tensor) -> Tensor {
        // Row-wise application requires the same matrix layout it was fit on.
        assert_eq!(t.rank(), 2, "row-wise quantizer applied to non-matrix");
        assert_eq!(t.shape()[1], self.cols, "column count changed");
        let mut out = t.clone();
        for (row, q) in out.data_mut().chunks_mut(self.cols).zip(&self.rows) {
            for v in row.iter_mut() {
                *v = q.fake_quantize(*v);
            }
        }
        out
    }

    fn bits(&self) -> u32 {
        self.bits
    }

    fn describe(&self) -> String {
        format!("row-wise uniform ({} scales)", self.rows.len())
    }
}

/// Log2 quantization for non-negative attention probabilities: codes are
/// `2^{-k}`, `k ∈ 0..2^b−1`, plus an exact zero for the all-zero code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Log2Quantizer {
    bits: u32,
}

impl Log2Quantizer {
    /// Creates a `bits`-wide log2 quantizer.
    pub fn new(bits: u32) -> Self {
        Self { bits }
    }

    /// Largest exponent magnitude (the last code is reserved for zero).
    fn max_k(&self) -> i32 {
        (1 << self.bits) - 2
    }

    /// Fake-quantizes one probability.
    pub fn fake_quantize(&self, x: f32) -> f32 {
        if x <= 0.0 {
            return 0.0;
        }
        let k = (-x.log2()).round().clamp(0.0, self.max_k() as f32) as i32;
        // Values below the smallest power-of-two code flush to zero.
        if x < (-(self.max_k() as f32)).exp2() / 2.0_f32.sqrt() {
            0.0
        } else {
            (-(k as f32)).exp2()
        }
    }
}

impl FittedQuantizer for Log2Quantizer {
    fn fake_quantize(&self, t: &Tensor) -> Tensor {
        t.map(|x| Log2Quantizer::fake_quantize(self, x))
    }

    fn bits(&self) -> u32 {
        self.bits
    }

    fn describe(&self) -> String {
        format!("log2 ({} bits)", self.bits)
    }
}

/// The FQ-ViT-like method.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FqVit;

impl FqVit {
    /// Creates the method.
    pub fn new() -> Self {
        Self
    }
}

impl QuantMethod for FqVit {
    fn name(&self) -> &'static str {
        "FQ-ViT"
    }

    fn fit_activation(&self, samples: &[f32], bits: u32) -> Box<dyn FittedQuantizer> {
        Box::new(UniformQuantizer::fit_min_max(bits, samples))
    }

    fn fit_activation_for(
        &self,
        key: ParamKey,
        samples: &[f32],
        bits: u32,
    ) -> Box<dyn FittedQuantizer> {
        // Log-Int-Softmax: the attention-probability operand of P·V.
        if key.site.kind == OpKind::PvMatmul && key.operand == Operand::Input {
            Box::new(Log2Quantizer::new(bits))
        } else {
            self.fit_activation(samples, bits)
        }
    }

    fn fit_weight(&self, weight: &Tensor, bits: u32) -> Box<dyn FittedQuantizer> {
        Box::new(RowWiseUniform::fit(weight, bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quq_vit::OpSite;

    #[test]
    fn row_wise_uses_independent_scales() {
        // Row 0 tiny, row 1 large: per-tensor uniform would crush row 0.
        let w = Tensor::from_vec(vec![0.01, -0.02, 0.015, 10.0, -8.0, 9.0], &[2, 3]).unwrap();
        let rw = RowWiseUniform::fit(&w, 6);
        assert_eq!(rw.num_scales(), 2);
        let fq = FittedQuantizer::fake_quantize(&rw, &w);
        assert!(
            (fq.data()[0] - 0.01).abs() < 0.002,
            "row 0 preserved: {}",
            fq.data()[0]
        );
        let per_tensor = UniformQuantizer::fit_min_max(6, w.data());
        assert_eq!(
            per_tensor.fake_quantize(0.01),
            0.0,
            "per-tensor crushes row 0"
        );
    }

    #[test]
    fn log2_handles_probability_range() {
        let q = Log2Quantizer::new(4);
        assert_eq!(q.fake_quantize(1.0), 1.0);
        assert_eq!(q.fake_quantize(0.5), 0.5);
        assert_eq!(q.fake_quantize(0.26), 0.25);
        assert_eq!(q.fake_quantize(0.0), 0.0);
        assert_eq!(q.fake_quantize(-0.1), 0.0);
        // Deep tail flushes to zero.
        assert_eq!(q.fake_quantize(1e-9), 0.0);
    }

    #[test]
    fn log2_is_finer_than_uniform_near_zero() {
        // Probabilities cluster near 0 (paper Fig. 3b); log2 resolves them.
        let probs: Vec<f32> = (1..1000).map(|i| 1.0 / (i as f32 * 7.0)).collect();
        let log2 = Log2Quantizer::new(4);
        let uni = UniformQuantizer::fit_min_max(4, &probs);
        let t = Tensor::from_vec(probs.clone(), &[probs.len()]).unwrap();
        let e_log: f64 = FittedQuantizer::mse(&log2, &probs);
        let e_uni: f64 = uni.mse(&probs);
        let _ = t;
        assert!(e_log < e_uni, "log2 {e_log:.3e} vs uniform {e_uni:.3e}");
    }

    #[test]
    fn method_routes_post_softmax_to_log2() {
        let m = FqVit::new();
        let pv = ParamKey {
            site: OpSite::in_block(0, OpKind::PvMatmul),
            operand: Operand::Input,
        };
        let q = m.fit_activation_for(pv, &[0.1, 0.5], 6);
        assert!(q.describe().contains("log2"));
        let other = ParamKey {
            site: OpSite::in_block(0, OpKind::Fc1),
            operand: Operand::Input,
        };
        let q2 = m.fit_activation_for(other, &[0.1, 0.5], 6);
        assert!(q2.describe().contains("uniform"));
    }

    #[test]
    fn weights_are_row_wise() {
        let m = FqVit::new();
        let w = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let q = m.fit_weight(&w, 8);
        assert!(q.describe().contains("row-wise"));
    }
}
