//! BaseQ — the paper's uniform-quantization baseline.
//!
//! §6.1: *"we substitute QUQ with uniform quantization while maintaining the
//! rest of the PTQ process unchanged, denoted as BaseQ."* Scales come from
//! min–max calibration (Eq. 1 with the full observed range representable),
//! which is exactly what makes 6-bit full quantization collapse in Table 3:
//! long-tailed tensors waste almost all codes on the tail.

use quq_core::quantizer::{FittedQuantizer, QuantMethod};
use quq_core::UniformQuantizer;

/// Min–max symmetric uniform quantization for every tensor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BaseQ;

impl BaseQ {
    /// Creates the baseline method.
    pub fn new() -> Self {
        Self
    }
}

impl QuantMethod for BaseQ {
    fn name(&self) -> &'static str {
        "BaseQ"
    }

    fn fit_activation(&self, samples: &[f32], bits: u32) -> Box<dyn FittedQuantizer> {
        Box::new(UniformQuantizer::fit_min_max(bits, samples))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseq_is_minmax_uniform() {
        let samples = [-2.0f32, 0.1, 0.2, 4.0];
        let q = BaseQ::new().fit_activation(&samples, 6);
        assert_eq!(q.bits(), 6);
        // Extremes representable within half a step.
        let t = quq_tensor::Tensor::from_vec(samples.to_vec(), &[4]).unwrap();
        let fq = q.fake_quantize(&t);
        assert!((fq.data()[3] - 4.0).abs() < 4.0 / 31.0);
    }

    #[test]
    fn baseq_wastes_resolution_on_long_tails() {
        // Bulk ±0.01 with an outlier at 10: 6-bit min–max Δ ≈ 0.32, so the
        // entire bulk collapses to zero — the Table 3 failure mode.
        let mut samples: Vec<f32> = (0..1000)
            .map(|i| ((i % 21) as f32 - 10.0) * 0.001)
            .collect();
        samples.push(10.0);
        let q = BaseQ::new().fit_activation(&samples, 6);
        let t = quq_tensor::Tensor::from_vec(vec![0.009, -0.008], &[2]).unwrap();
        let fq = q.fake_quantize(&t);
        assert_eq!(fq.data(), &[0.0, 0.0]);
    }
}
