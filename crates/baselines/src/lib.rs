//! # quq-baselines — comparison PTQ methods for the QUQ evaluation
//!
//! Reimplementations of the methods the paper compares against in Tables
//! 2–3, all expressed as [`quq_core::QuantMethod`]s so the shared
//! calibration/execution pipeline runs them interchangeably:
//!
//! * [`BaseQ`] — min–max symmetric uniform quantization (the paper's
//!   ablation baseline).
//! * [`BiScaledFxp`] — two symmetric scale factors with an outlier index
//!   (Jain et al., DAC 2019).
//! * [`FqVit`] — fully quantized ViT with row-wise weights and log2
//!   attention (Lin et al.).
//! * [`Ptq4Vit`] — twin uniform quantization with Hessian-guided search
//!   (Yuan et al., ECCV 2022).
//! * [`ApqVit`] — block-wise Hessian-optimized uniform proxy (Ding et al.,
//!   MM 2022).
//!
//! ```
//! use quq_baselines::BaseQ;
//! use quq_core::quantizer::QuantMethod;
//!
//! let q = BaseQ::new().fit_activation(&[-1.0, 0.5, 2.0], 8);
//! assert_eq!(q.bits(), 8);
//! ```

pub mod baseq;
pub mod biscaled;
pub mod fqvit;
pub mod ptq4vit;

pub use baseq::BaseQ;
pub use biscaled::{BiScaledFxp, BiScaledParams};
pub use fqvit::{FqVit, Log2Quantizer, RowWiseUniform};
pub use ptq4vit::{ApqVit, Ptq4Vit, TwinUniformParams};
