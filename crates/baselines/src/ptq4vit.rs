//! PTQ4ViT-like baseline (Yuan et al., ECCV 2022) — twin uniform
//! quantization with Hessian-guided scale search, and the APQ-ViT proxy
//! (Ding et al., MM 2022) with block-wise calibration granularity.
//!
//! Twin uniform splits the code space into two uniform regions (the paper
//! notes it "can be considered as a subset of QUQ"): one range for the bulk,
//! one for the tail, each symmetric. Unlike QUQ there is no per-side
//! adaptation, no mode switching, and no power-of-two scale constraint.

use quq_core::hessian::Objective;
use quq_core::quantizer::{FittedQuantizer, QuantMethod};
use quq_core::UniformQuantizer;
use quq_tensor::stats::quantile;
use quq_tensor::Tensor;

/// Fitted twin-uniform parameters: a fine and a coarse symmetric uniform
/// range, each using half the code space (`b−1` bits).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwinUniformParams {
    fine: UniformQuantizer,
    coarse: UniformQuantizer,
    bits: u32,
}

impl TwinUniformParams {
    /// Fits: fine range bounded by the `q` quantile of |x|, coarse range by
    /// the max; each region gets `b−1`-bit codes.
    pub fn fit(samples: &[f32], bits: u32, q: f32) -> Self {
        let mags: Vec<f32> = samples.iter().map(|v| v.abs()).collect();
        let bound = quantile(&mags, q).unwrap_or(1.0).max(f32::MIN_POSITIVE);
        let half_bits = (bits - 1).max(1);
        let bulk: Vec<f32> = samples
            .iter()
            .copied()
            .filter(|v| v.abs() <= bound)
            .collect();
        let fine = UniformQuantizer::fit_min_max(half_bits, &bulk);
        let coarse = UniformQuantizer::fit_min_max(half_bits, samples);
        Self { fine, coarse, bits }
    }

    /// Fake-quantizes one value: fine region when representable there,
    /// coarse otherwise.
    pub fn fake_quantize(&self, x: f32) -> f32 {
        let fine_max = self.fine.max_code() as f32 * self.fine.delta();
        let fine_min = self.fine.min_code() as f32 * self.fine.delta();
        if x >= fine_min && x <= fine_max {
            self.fine.fake_quantize(x)
        } else {
            self.coarse.fake_quantize(x)
        }
    }
}

impl FittedQuantizer for TwinUniformParams {
    fn fake_quantize(&self, t: &Tensor) -> Tensor {
        t.map(|x| TwinUniformParams::fake_quantize(self, x))
    }

    fn bits(&self) -> u32 {
        self.bits
    }

    fn describe(&self) -> String {
        format!(
            "twin uniform Δf={:.3e} Δc={:.3e}",
            self.fine.delta(),
            self.coarse.delta()
        )
    }
}

/// Scores a fitted twin-uniform candidate under PTQ4ViT's Hessian-guided
/// spirit (the shared capped diagonal proxy of `quq_core::hessian`).
fn proxy_score(q: &TwinUniformParams, samples: &[f32]) -> f64 {
    quq_core::hessian::score_fn(|x| q.fake_quantize(x), samples, Objective::HessianProxy)
}

/// The PTQ4ViT-like method: twin uniform activations + Hessian-proxy grid
/// search over the bulk quantile, per-tensor MSE-fitted uniform weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ptq4Vit {
    /// Candidate bulk quantiles.
    pub q_grid: [f32; 4],
}

impl Ptq4Vit {
    /// Creates the method with the default search grid.
    pub fn new() -> Self {
        Self {
            q_grid: [0.999, 0.99, 0.97, 0.95],
        }
    }
}

impl Default for Ptq4Vit {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantMethod for Ptq4Vit {
    fn name(&self) -> &'static str {
        "PTQ4ViT"
    }

    fn fit_activation(&self, samples: &[f32], bits: u32) -> Box<dyn FittedQuantizer> {
        let mut best = TwinUniformParams::fit(samples, bits, self.q_grid[0]);
        let mut best_score = proxy_score(&best, samples);
        for &q in &self.q_grid[1..] {
            let cand = TwinUniformParams::fit(samples, bits, q);
            let s = proxy_score(&cand, samples);
            if s < best_score {
                best_score = s;
                best = cand;
            }
        }
        Box::new(best)
    }

    fn fit_weight(&self, weight: &Tensor, bits: u32) -> Box<dyn FittedQuantizer> {
        Box::new(UniformQuantizer::fit_mse(bits, weight.data()))
    }
}

/// The APQ-ViT proxy: per-tensor uniform with MSE-optimal scales chosen
/// under the Hessian-proxy objective at *block* granularity (the paper's
/// footnote: "block-wise Hessian information is considered"). Within our
/// per-tensor tables, block granularity is modeled by a coarser search grid
/// shared across a block's tensors — functionally, MSE-optimal uniform.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApqVit;

impl ApqVit {
    /// Creates the method.
    pub fn new() -> Self {
        Self
    }

    /// The objective it optimizes.
    pub fn objective() -> Objective {
        Objective::HessianProxy
    }
}

impl QuantMethod for ApqVit {
    fn name(&self) -> &'static str {
        "APQ-ViT"
    }

    fn fit_activation(&self, samples: &[f32], bits: u32) -> Box<dyn FittedQuantizer> {
        Box::new(UniformQuantizer::fit_mse(bits, samples))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quq_tensor::rng::OutlierMixture;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn long_tailed(seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        OutlierMixture::new(0.02, 0.5, 0.01).sample_vec(&mut rng, 20_000)
    }

    #[test]
    fn twin_uniform_beats_plain_uniform_on_long_tails() {
        let s = long_tailed(1);
        let twin = Ptq4Vit::new().fit_activation(&s, 6);
        let uni = UniformQuantizer::fit_min_max(6, &s);
        assert!(twin.mse(&s) < uni.mse(&s));
    }

    #[test]
    fn quq_beats_twin_uniform_on_asymmetric_data() {
        // Twin uniform is symmetric per region; QUQ adapts each side.
        let mut rng = StdRng::seed_from_u64(2);
        let s: Vec<f32> = (0..20_000)
            .map(|_| {
                let z = quq_tensor::rng::standard_normal(&mut rng);
                if z < 0.0 {
                    z * 0.02
                } else {
                    z * z * 0.4
                }
            })
            .collect();
        let twin = Ptq4Vit::new().fit_activation(&s, 6);
        // The dominance claim is about the paper's full method (PRA + the
        // §6.1 grid search), not the raw PRA initialization.
        let quq = quq_core::grid_search_quq(
            &s,
            6,
            quq_core::PraConfig::default(),
            quq_core::Objective::Mse,
        );
        assert!(
            quq.mse(&s) < twin.mse(&s),
            "QUQ {:.3e} vs twin {:.3e}",
            quq.mse(&s),
            twin.mse(&s)
        );
    }

    #[test]
    fn twin_uniform_routes_by_region() {
        let s = long_tailed(3);
        let p = TwinUniformParams::fit(&s, 8, 0.99);
        // Bulk value preserved finely.
        assert!((p.fake_quantize(0.01) - 0.01).abs() < 0.005);
        // Tail value preserved coarsely.
        let max = s.iter().copied().fold(0.0f32, f32::max);
        assert!((p.fake_quantize(max) - max).abs() < max * 0.05);
    }

    #[test]
    fn apq_fits_mse_optimal_uniform() {
        let s = long_tailed(4);
        let apq = ApqVit::new().fit_activation(&s, 6);
        let mm = UniformQuantizer::fit_min_max(6, &s);
        assert!(apq.mse(&s) <= mm.mse(&s));
        assert_eq!(ApqVit::objective(), Objective::HessianProxy);
    }

    #[test]
    fn method_names_match_paper_tables() {
        assert_eq!(Ptq4Vit::new().name(), "PTQ4ViT");
        assert_eq!(ApqVit::new().name(), "APQ-ViT");
    }
}
