//! BiScaled-FxP (Jain et al., DAC 2019) — two fixed-point formats for
//! long-tailed data.
//!
//! The original quantizes a tensor with two `b`-bit **fixed-point** formats
//! sharing one word width: `Q(i2, f2)` sized so the tensor's maximum is
//! representable ("scale-long", for the outliers recorded in an index
//! table), and `Q(i1, f1)` with `BS` extra fraction bits ("scale-short",
//! for the bulk). Both steps are powers of two and the gap between them is
//! the small bi-scale parameter `BS` — *not* a freely fitted threshold.
//!
//! That structure is exactly why the scheme degrades on ViT data (paper
//! §5/§6): with bulk-to-outlier ratios of 100–1000×, a few extra fraction
//! bits cannot give the bulk usable resolution at 6 bits, and the symmetric
//! formats waste codes on sign-asymmetric tensors. Following the paper's
//! §6.1 fairness note ("the optimization techniques used in QUQ are also
//! applied to BiScaled-FxP"), we grid-search `BS` per tensor by MSE.

use quq_core::quantizer::{FittedQuantizer, QuantMethod};
use quq_core::UniformQuantizer;
use quq_tensor::Tensor;

/// Fitted BiScaled parameters: bulk/outlier fixed-point quantizers and the
/// magnitude threshold implied by the bulk format's range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BiScaledParams {
    fine: UniformQuantizer,
    coarse: UniformQuantizer,
    threshold: f32,
    outlier_fraction: f32,
}

impl BiScaledParams {
    /// Fits the two fixed-point formats: the coarse step is the min–max
    /// scale rounded **up to a power of two** (fixed-point constraint); the
    /// fine step sits `bi_scale` octaves below it. The bulk/outlier
    /// threshold is the largest value the fine format represents.
    pub fn fit(samples: &[f32], bits: u32, bi_scale: u32) -> Self {
        let minmax = UniformQuantizer::fit_min_max(bits, samples);
        let coarse_delta = minmax.delta().log2().ceil().exp2();
        let coarse = UniformQuantizer::new(bits, coarse_delta);
        let fine = UniformQuantizer::new(bits, coarse_delta / (bi_scale as f32).exp2());
        let threshold = fine.max_code() as f32 * fine.delta();
        let outliers = samples.iter().filter(|v| v.abs() > threshold).count();
        let outlier_fraction = if samples.is_empty() {
            0.0
        } else {
            outliers as f32 / samples.len() as f32
        };
        Self {
            fine,
            coarse,
            threshold,
            outlier_fraction,
        }
    }

    /// The bulk/outlier boundary on |x| (the fine format's range).
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Fraction of calibration elements that were outliers — the index-table
    /// overhead the paper calls "unpredictable".
    pub fn outlier_fraction(&self) -> f32 {
        self.outlier_fraction
    }

    /// Fake-quantizes one value.
    pub fn fake_quantize(&self, x: f32) -> f32 {
        if x.abs() <= self.threshold {
            self.fine.fake_quantize(x)
        } else {
            self.coarse.fake_quantize(x)
        }
    }
}

impl FittedQuantizer for BiScaledParams {
    fn fake_quantize(&self, t: &Tensor) -> Tensor {
        t.map(|x| BiScaledParams::fake_quantize(self, x))
    }

    fn bits(&self) -> u32 {
        self.fine.bits()
    }

    fn describe(&self) -> String {
        format!(
            "BiScaled Δf={:.3e} Δc={:.3e} T={:.3e} ({:.2}% outliers)",
            self.fine.delta(),
            self.coarse.delta(),
            self.threshold,
            self.outlier_fraction * 100.0
        )
    }
}

/// The BiScaled-FxP method with per-tensor `BS` search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BiScaledFxp {
    /// Candidate bi-scale (extra fraction bits) values searched during
    /// fitting; the original uses a small fixed value, we search a small
    /// neighborhood per the paper's fairness note.
    pub bi_scale_grid: [u32; 3],
}

impl BiScaledFxp {
    /// Creates the method with the default `BS` grid.
    pub fn new() -> Self {
        Self {
            bi_scale_grid: [2, 3, 4],
        }
    }
}

impl Default for BiScaledFxp {
    fn default() -> Self {
        Self::new()
    }
}

impl QuantMethod for BiScaledFxp {
    fn name(&self) -> &'static str {
        "BiScaled-FxP"
    }

    fn fit_activation(&self, samples: &[f32], bits: u32) -> Box<dyn FittedQuantizer> {
        let mut best = BiScaledParams::fit(samples, bits, self.bi_scale_grid[0]);
        let mut best_mse = FittedQuantizer::mse(&best, samples);
        for &bs in &self.bi_scale_grid[1..] {
            let cand = BiScaledParams::fit(samples, bits, bs);
            let m = FittedQuantizer::mse(&cand, samples);
            if m < best_mse {
                best_mse = m;
                best = cand;
            }
        }
        Box::new(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quq_tensor::rng::OutlierMixture;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn long_tailed(seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        OutlierMixture::new(0.02, 0.5, 0.01).sample_vec(&mut rng, 20_000)
    }

    #[test]
    fn biscaled_beats_plain_uniform_on_moderate_tails() {
        let s = long_tailed(1);
        let bi = BiScaledFxp::new().fit_activation(&s, 6);
        let uni = UniformQuantizer::fit_min_max(6, &s);
        assert!(bi.mse(&s) < uni.mse(&s));
    }

    #[test]
    fn scales_are_powers_of_two() {
        let s = long_tailed(2);
        let p = BiScaledParams::fit(&s, 6, 3);
        for d in [p.fine.delta(), p.coarse.delta()] {
            let l = d.log2();
            assert!((l - l.round()).abs() < 1e-5, "Δ = {d} not a power of two");
        }
        // The gap is exactly BS octaves.
        assert!((p.coarse.delta() / p.fine.delta() - 8.0).abs() < 1e-5);
    }

    #[test]
    fn biscaled_collapses_on_extreme_dynamic_range_at_6_bit() {
        // ViT-like: bulk std 0.02 with outliers reaching ~40 (LayerNorm gain
        // channels): the fine format's step stays ≥ range/2^{b-1+BS}, far
        // too coarse for the bulk — the paper's Table 3 collapse.
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = OutlierMixture::new(0.02, 0.2, 0.01).sample_vec(&mut rng, 20_000);
        s.extend([40.0, -38.0, 35.0]);
        let bi = BiScaledFxp::new().fit_activation(&s, 6);
        // Bulk values all collapse to zero.
        let t = Tensor::from_vec(vec![0.02, -0.015, 0.03], &[3]).unwrap();
        let fq = bi.fake_quantize(&t);
        assert_eq!(fq.data(), &[0.0, 0.0, 0.0], "Δf = too coarse expected");
        // QUQ handles the same tensor fine.
        let quq = quq_core::Pra::with_defaults(6).run(&s).params;
        assert!((quq.fake_quantize(0.02) - 0.02).abs() < 0.01);
        assert!(quq.mse(&s) < bi.mse(&s));
    }

    #[test]
    fn biscaled_recovers_at_8_bit() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut s = OutlierMixture::new(0.02, 0.2, 0.01).sample_vec(&mut rng, 20_000);
        s.extend([40.0, -38.0]);
        let b6 = BiScaledFxp::new().fit_activation(&s, 6);
        let b8 = BiScaledFxp::new().fit_activation(&s, 8);
        assert!(
            b8.mse(&s) < b6.mse(&s) / 4.0,
            "8-bit should recover sharply"
        );
    }

    #[test]
    fn biscaled_loses_to_quq_on_single_signed_data() {
        // Softmax-like: non-negative, clustered near zero. BiScaled's
        // symmetric formats idle their negative halves; QUQ's Mode B spends
        // the whole encoding space on the live side with a free-floating Δ.
        let mut rng = StdRng::seed_from_u64(5);
        let s: Vec<f32> = (0..20_000)
            .map(|_| {
                let z = quq_tensor::rng::standard_normal(&mut rng).abs();
                (z * z * 0.02).min(1.0)
            })
            .collect();
        let bi = BiScaledFxp::new().fit_activation(&s, 6);
        // PRA alone already picks Mode B; the dominance claim is about the
        // paper's full method (PRA + the §6.1 grid search).
        let pra = quq_core::Pra::with_defaults(6).run(&s).params;
        assert_eq!(pra.mode(), quq_core::Mode::B);
        let quq = quq_core::grid_search_quq(
            &s,
            6,
            quq_core::PraConfig::default(),
            quq_core::Objective::Mse,
        );
        assert!(
            quq.mse(&s) < bi.mse(&s),
            "QUQ {:.3e} vs BiScaled {:.3e}",
            quq.mse(&s),
            bi.mse(&s)
        );
    }

    #[test]
    fn degenerate_input_does_not_panic() {
        let p = BiScaledParams::fit(&[], 6, 3);
        assert_eq!(p.outlier_fraction(), 0.0);
        let q = BiScaledParams::fit(&[0.0; 10], 6, 3);
        assert_eq!(q.fake_quantize(0.0), 0.0);
    }

    #[test]
    fn outlier_fraction_and_describe() {
        let s = long_tailed(6);
        let p = BiScaledParams::fit(&s, 6, 3);
        assert!(p.outlier_fraction() >= 0.0);
        assert!(p.describe().contains("BiScaled"));
        assert!(p.threshold() > 0.0);
    }
}
