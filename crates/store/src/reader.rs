//! Opening and lazily loading QUQM artifacts.
//!
//! [`Artifact::open`] maps the file ([`crate::MmapStorage`]) and verifies
//! only the header, metadata, and manifest — no chunk byte is read, so an
//! open costs pages for the directory, not the payloads. Each chunk then
//! CRC-verifies and (when its manifest stack says so) decodes **on first
//! touch**:
//!
//! * a raw chunk on a borrowable backend is CRC-checked once and from
//!   then on served as a borrowed slice of the mapping — zero copies;
//! * a compressed chunk decodes once into a shared buffer behind a
//!   per-chunk fill lock (the same stampede guard the serve registry uses
//!   for model loads), so concurrent first readers decode it exactly once;
//! * a raw chunk on a copy-only backend keeps the v1 behavior: read and
//!   CRC per access, no cached second copy of the payload.
//!
//! Untouched sites therefore cost zero bytes read — the property that
//! lets the multi-model registry lazily reload an artifact while the old
//! instance keeps serving.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use quq_core::calib::ParamKey;
use quq_core::pipeline::{PtqConfig, PtqTables};
use quq_core::qub::QubTensor;
use quq_core::read_qub_tensor_bounded;
use quq_core::scheme::QuqParams;
use quq_tensor::Tensor;
use quq_vit::{BlockWeights, Family, ModelConfig, ModelWeights, OpSite, StageWeights, VitModel};

use crate::crc32::crc32;
use crate::format::{
    decode_activation_params, decode_manifest, decode_manifest_v1, decode_metadata,
    decode_weight_params, qub_key, site_from_qub_key, ChunkInfo, ChunkKind, ACTIVATION_PARAMS_KEY,
    HEADER_LEN, MAGIC, VERSION, VERSION_V1, WEIGHT_PARAMS_KEY,
};
use crate::mmap::MmapStorage;
use crate::storage::{ByteView, FsStorage, Storage};
use crate::StoreError;

/// A decoded chunk payload.
#[derive(Debug, Clone)]
pub enum Chunk {
    /// Raw `f32` tensor.
    Tensor(Tensor),
    /// Quantized weight record.
    Qub(QubTensor),
    /// Fitted activation quantizers.
    ActivationParams(Vec<(ParamKey, QuqParams)>),
    /// Fitted weight quantizers.
    WeightParams(Vec<(OpSite, QuqParams)>),
}

/// Verified, decoded chunk bytes — borrowed straight from the storage's
/// mapping when possible, shared from the decode cache for compressed
/// chunks, owned for copy-only backends. Dereferences to `&[u8]`.
pub enum ChunkBytes<'a> {
    /// A zero-copy borrow of the storage's memory (raw chunk, verified).
    Borrowed(&'a [u8]),
    /// A fresh copy (raw chunk on a backend with nothing to lend).
    Owned(Vec<u8>),
    /// The chunk's cached decode (compressed chunks decode exactly once).
    Shared(Arc<Vec<u8>>),
}

impl std::ops::Deref for ChunkBytes<'_> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        match self {
            ChunkBytes::Borrowed(b) => b,
            ChunkBytes::Owned(v) => v,
            ChunkBytes::Shared(a) => a,
        }
    }
}

/// Per-chunk lazy state: CRC verification and (for compressed chunks)
/// the cached decode, each done at most once per open artifact.
struct ChunkCell {
    /// Set once the stored bytes have CRC-verified (raw borrowable path).
    verified: OnceLock<()>,
    /// The decoded payload of a compressed chunk, filled exactly once.
    decoded: OnceLock<Arc<Vec<u8>>>,
    /// Stampede guard for the fill: concurrent first readers serialize
    /// here (the serve registry's loading-mutex pattern) so the CRC pass
    /// and decode run once, not once per racing thread.
    fill: Mutex<()>,
}

impl ChunkCell {
    fn new() -> ChunkCell {
        ChunkCell {
            verified: OnceLock::new(),
            decoded: OnceLock::new(),
            fill: Mutex::new(()),
        }
    }
}

/// An open QUQM artifact: validated header + manifest, chunks on demand.
///
/// Every byte is read through a [`Storage`] backend — a memory-mapped
/// view of the file by default ([`Artifact::open`]), or anything
/// byte-addressable via [`Artifact::open_on`].
pub struct Artifact {
    storage: Arc<dyn Storage>,
    key: String,
    path: PathBuf,
    file_len: u64,
    version: u32,
    config: ModelConfig,
    ptq: PtqConfig,
    method: String,
    manifest: Vec<ChunkInfo>,
    index: BTreeMap<String, usize>,
    cells: Vec<ChunkCell>,
}

fn shape_elems(shape: &[usize]) -> Result<u64, StoreError> {
    shape
        .iter()
        .try_fold(1u64, |acc, &d| acc.checked_mul(d as u64))
        .ok_or_else(|| StoreError::Format("tensor shape overflows u64".into()))
}

/// Expected payload length of a `QUB1` record with one byte per element.
fn qub_record_len(shape: &[usize]) -> Result<u64, StoreError> {
    // magic(4) + bits/fine/coarse/pad(4) + base_delta(4) + rank(4)
    // + dims(8·rank) + one payload byte per element.
    Ok(16 + 8 * shape.len() as u64 + shape_elems(shape)?)
}

impl Artifact {
    /// Opens and validates an artifact without reading any chunk payload.
    ///
    /// The file is memory-mapped, so chunk reads later borrow pages
    /// instead of copying; when mapping fails (exotic filesystems), the
    /// classic positioned-read backend takes over transparently.
    ///
    /// Verifies the header, metadata, and manifest checksums, then checks
    /// the manifest's structural invariants: unique keys, chunks laid out
    /// contiguously from the end of the manifest to the end of the file,
    /// every chunk's decoded length consistent with its declared kind and
    /// shape, and every codec stack well-formed. After this, any
    /// corruption in a chunk payload is caught by that chunk's own CRC at
    /// load time — before its codec stack ever runs on the bytes.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let key = path
            .file_name()
            .ok_or_else(|| StoreError::Format(format!("artifact path {path:?} has no file name")))?
            .to_string_lossy()
            .into_owned();
        let storage: Arc<dyn Storage> = match MmapStorage::open_path(path) {
            Ok(m) => Arc::new(m),
            Err(StoreError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::Io(e))
            }
            // Mapping can fail where plain reads still work; fall back.
            Err(_) => {
                let dir = path.parent().map(Path::to_path_buf).unwrap_or_default();
                Arc::new(FsStorage::new(dir))
            }
        };
        let mut artifact = Self::open_on(storage, &key)?;
        artifact.path = path.to_path_buf();
        Ok(artifact)
    }

    /// Opens and validates the artifact stored under `key` on any
    /// [`Storage`] backend. Declared block and chunk lengths are clamped
    /// against the object's real size before any allocation (inside
    /// [`Storage::read_range`]), so a corrupt length field yields a
    /// structured error, never an attacker-sized buffer.
    pub fn open_on(storage: Arc<dyn Storage>, key: &str) -> Result<Self, StoreError> {
        let _span = quq_obs::span("store.open");
        let file_len = storage.open(key)?;

        if file_len < HEADER_LEN {
            return Err(StoreError::Format(format!(
                "file is {file_len} bytes, shorter than the {HEADER_LEN}-byte header"
            )));
        }
        let header = storage.read_range(key, 0, HEADER_LEN)?;
        quq_obs::add("store.bytes_read", HEADER_LEN);
        let expected = u32::from_le_bytes(header[24..28].try_into().expect("sized"));
        let actual = crc32(&header[..24]);
        if expected != actual {
            quq_obs::add("store.checksum_failures", 1);
            return Err(StoreError::Checksum {
                section: "header".into(),
                expected,
                actual,
            });
        }
        if header[..4] != MAGIC {
            return Err(StoreError::Format(format!(
                "bad magic {:?} (want {MAGIC:?})",
                &header[..4]
            )));
        }
        let version = u32::from_le_bytes(header[4..8].try_into().expect("sized"));
        if version != VERSION && version != VERSION_V1 {
            return Err(StoreError::Unsupported(format!(
                "artifact version {version}; this reader understands versions \
                 {VERSION_V1} and {VERSION}"
            )));
        }
        let meta_len = u64::from_le_bytes(header[8..16].try_into().expect("sized"));
        let manifest_len = u64::from_le_bytes(header[16..24].try_into().expect("sized"));
        let chunks_start = HEADER_LEN
            .checked_add(meta_len)
            .and_then(|v| v.checked_add(4))
            .and_then(|v| v.checked_add(manifest_len))
            .and_then(|v| v.checked_add(4))
            .filter(|&v| v <= file_len)
            .ok_or_else(|| {
                StoreError::Format(format!(
                    "declared block lengths ({meta_len} + {manifest_len}) exceed the \
                     {file_len}-byte file"
                ))
            })?;

        let metadata = read_checked_block(&*storage, key, HEADER_LEN, meta_len, "metadata")?;
        let (config, ptq, method) = decode_metadata(&metadata)?;
        let manifest_bytes = read_checked_block(
            &*storage,
            key,
            HEADER_LEN + meta_len + 4,
            manifest_len,
            "manifest",
        )?;
        let manifest = if version == VERSION_V1 {
            decode_manifest_v1(&manifest_bytes)?
        } else {
            decode_manifest(&manifest_bytes)?
        };

        let mut index = BTreeMap::new();
        let mut offset = chunks_start;
        for (i, c) in manifest.iter().enumerate() {
            if index.insert(c.key.clone(), i).is_some() {
                return Err(StoreError::Format(format!(
                    "duplicate chunk key {:?}",
                    c.key
                )));
            }
            if c.offset != offset {
                return Err(StoreError::Format(format!(
                    "chunk {:?} at offset {} breaks the contiguous layout (expected {offset})",
                    c.key, c.offset
                )));
            }
            offset = offset.checked_add(c.length).ok_or_else(|| {
                StoreError::Format(format!("chunk {:?} length overflows the file", c.key))
            })?;
            // v1 manifests were decoded straight into raw stacks; re-check
            // anyway so both paths share one invariant.
            c.validate_stack()?;
            // Kind/shape consistency constrains the *decoded* length.
            let want = match c.kind {
                ChunkKind::TensorF32 => {
                    Some(4u64.checked_mul(shape_elems(&c.shape)?).ok_or_else(|| {
                        StoreError::Format(format!("chunk {:?} shape overflows u64", c.key))
                    })?)
                }
                ChunkKind::Qub => Some(qub_record_len(&c.shape)?),
                ChunkKind::ActivationParams | ChunkKind::WeightParams => {
                    if !c.shape.is_empty() {
                        return Err(StoreError::Format(format!(
                            "params chunk {:?} must not declare a shape",
                            c.key
                        )));
                    }
                    None
                }
            };
            if let Some(want) = want {
                if c.raw_length != want {
                    return Err(StoreError::Format(format!(
                        "chunk {:?} declares {} decoded bytes but its shape {:?} implies {want}",
                        c.key, c.raw_length, c.shape
                    )));
                }
            }
        }
        if offset != file_len {
            return Err(StoreError::Format(format!(
                "chunks end at offset {offset} but the file is {file_len} bytes"
            )));
        }

        let cells = manifest.iter().map(|_| ChunkCell::new()).collect();
        Ok(Self {
            storage,
            key: key.to_string(),
            path: PathBuf::from(key),
            file_len,
            version,
            config,
            ptq,
            method,
            manifest,
            index,
            cells,
        })
    }

    /// Model configuration recorded in the artifact.
    pub fn model_config(&self) -> &ModelConfig {
        &self.config
    }

    /// PTQ preset recorded in the artifact.
    pub fn ptq_config(&self) -> PtqConfig {
        self.ptq
    }

    /// Fitting-method name recorded in the artifact.
    pub fn method(&self) -> &str {
        &self.method
    }

    /// Format version of the opened file (1 or 2).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The chunk directory.
    pub fn chunks(&self) -> &[ChunkInfo] {
        &self.manifest
    }

    /// Total artifact size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.file_len
    }

    /// Path this artifact was opened from (the storage key, for artifacts
    /// opened via [`Artifact::open_on`]).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Storage key this artifact lives under.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Every weight site with a stored QUB record, in manifest order.
    pub fn qub_sites(&self) -> Vec<OpSite> {
        self.manifest
            .iter()
            .filter(|c| c.kind == ChunkKind::Qub)
            .filter_map(|c| site_from_qub_key(&c.key))
            .collect()
    }

    fn info(&self, key: &str) -> Result<(usize, &ChunkInfo), StoreError> {
        let &i = self
            .index
            .get(key)
            .ok_or_else(|| StoreError::MissingChunk(key.to_string()))?;
        Ok((i, &self.manifest[i]))
    }

    fn checksum_mismatch(&self, info: &ChunkInfo, actual: u32) -> StoreError {
        quq_obs::add("store.checksum_failures", 1);
        StoreError::Checksum {
            section: info.key.clone(),
            expected: info.crc,
            actual,
        }
    }

    /// The verified, decoded payload of the chunk under `key`.
    ///
    /// First touch CRC-verifies the stored bytes and, for compressed
    /// chunks, runs the declared codec stack (once, stampede-safe);
    /// afterwards raw chunks on a borrowable backend are served as
    /// borrowed slices with no further checksumming or copying.
    pub fn chunk_bytes(&self, key: &str) -> Result<ChunkBytes<'_>, StoreError> {
        let (idx, _) = self.info(key)?;
        self.chunk_bytes_idx(idx)
    }

    fn chunk_bytes_idx(&self, idx: usize) -> Result<ChunkBytes<'_>, StoreError> {
        let info = &self.manifest[idx];
        let cell = &self.cells[idx];
        quq_obs::add("store.chunk_loads", 1);

        if let Some(decoded) = cell.decoded.get() {
            return Ok(ChunkBytes::Shared(decoded.clone()));
        }

        if info.stack.is_raw() {
            // `read_range_ref` re-validates offset+length against the
            // object's real size before touching memory, so even a stale
            // or hostile manifest can never reach past the stored bytes.
            let view = self
                .storage
                .read_range_ref(&self.key, info.offset, info.length)?;
            return match view {
                ByteView::Borrowed(b) => {
                    // Zero-copy backend: CRC once, then borrow for free.
                    // The mapping's pages cannot change under us (artifacts
                    // are only ever replaced by rename — see `mmap.rs`), so
                    // one verification covers every later access.
                    if cell.verified.get().is_none() {
                        let _guard = cell.fill.lock().unwrap_or_else(PoisonError::into_inner);
                        if cell.verified.get().is_none() {
                            quq_obs::add("store.bytes_read", info.length);
                            let actual = crc32(b);
                            if actual != info.crc {
                                return Err(self.checksum_mismatch(info, actual));
                            }
                            let _ = cell.verified.set(());
                        }
                    }
                    Ok(ChunkBytes::Borrowed(b))
                }
                ByteView::Owned(v) => {
                    // Copy-only backend: the bytes are re-read each time,
                    // so they are re-verified each time (v1 behavior).
                    quq_obs::add("store.bytes_read", info.length);
                    let actual = crc32(&v);
                    if actual != info.crc {
                        return Err(self.checksum_mismatch(info, actual));
                    }
                    Ok(ChunkBytes::Owned(v))
                }
            };
        }

        // Compressed chunk: CRC + decode exactly once, behind the fill
        // lock so racing first readers don't decode in parallel.
        let _guard = cell.fill.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(decoded) = cell.decoded.get() {
            return Ok(ChunkBytes::Shared(decoded.clone()));
        }
        let stored = self
            .storage
            .read_range_ref(&self.key, info.offset, info.length)?;
        quq_obs::add("store.bytes_read", info.length);
        let actual = crc32(&stored);
        if actual != info.crc {
            return Err(self.checksum_mismatch(info, actual));
        }
        let raw_len = usize::try_from(info.raw_length).map_err(|_| {
            StoreError::Format(format!(
                "chunk {:?} decoded length {} exceeds the address space",
                info.key, info.raw_length
            ))
        })?;
        let decoded = info.stack.decode(&stored, raw_len).map_err(|e| match e {
            StoreError::Format(m) => StoreError::Format(format!("chunk {:?}: {m}", info.key)),
            other => other,
        })?;
        let decoded = Arc::new(decoded);
        let _ = cell.decoded.set(decoded.clone());
        Ok(ChunkBytes::Shared(decoded))
    }

    /// Loads and decodes the chunk under `key`, verifying its checksum.
    pub fn load_site(&self, key: &str) -> Result<Chunk, StoreError> {
        let (idx, _) = self.info(key)?;
        let info = self.manifest[idx].clone();
        let bytes = self.chunk_bytes_idx(idx)?;
        match info.kind {
            ChunkKind::TensorF32 => {
                let data: Vec<f32> = bytes
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().expect("sized")))
                    .collect();
                let t = Tensor::from_vec(data, &info.shape)
                    .map_err(|e| StoreError::Format(format!("chunk {:?}: {e}", info.key)))?;
                Ok(Chunk::Tensor(t))
            }
            ChunkKind::Qub => {
                let qub = read_qub_tensor_bounded(&bytes[..], info.raw_length)?;
                if qub.shape != info.shape {
                    return Err(StoreError::Format(format!(
                        "chunk {:?}: QUB record shape {:?} disagrees with manifest shape {:?}",
                        info.key, qub.shape, info.shape
                    )));
                }
                Ok(Chunk::Qub(qub))
            }
            ChunkKind::ActivationParams => {
                Ok(Chunk::ActivationParams(decode_activation_params(&bytes)?))
            }
            ChunkKind::WeightParams => Ok(Chunk::WeightParams(decode_weight_params(&bytes)?)),
        }
    }

    /// Loads the stored QUB record for one weight site.
    pub fn load_qub(&self, site: OpSite) -> Result<QubTensor, StoreError> {
        match self.load_site(&qub_key(site))? {
            Chunk::Qub(q) => Ok(q),
            _ => Err(StoreError::Format(format!(
                "chunk {:?} is not a QUB record",
                qub_key(site)
            ))),
        }
    }

    fn load_tensor(&self, key: &str) -> Result<Tensor, StoreError> {
        match self.load_site(key)? {
            Chunk::Tensor(t) => Ok(t),
            _ => Err(StoreError::Format(format!(
                "chunk {key:?} is not an f32 tensor"
            ))),
        }
    }

    /// Reconstructs the full model and PTQ tables from the artifact.
    ///
    /// Model tensors are restored bit-exactly from their `f32` chunks
    /// (decoding any codec stack first), and quantizer parameters from
    /// their raw `f32` scale factors, so the loaded pair produces logits
    /// bit-identical to the calibrated in-memory pair on both backends.
    /// The returned tables carry no `original_weights` — backends fall
    /// back to the (identical) live model weight — and their
    /// `quantized_weights` come from decoding the stored QUB records.
    pub fn load_all(&self) -> Result<(VitModel, PtqTables), StoreError> {
        let _span = quq_obs::span("store.load_all");
        let config = self.config.clone();

        let mut stages = Vec::with_capacity(config.stages.len());
        for (si, stage) in config.stages.iter().enumerate() {
            let mut blocks = Vec::with_capacity(stage.depth);
            for bi in 0..stage.depth {
                let t = |name: &str| self.load_tensor(&format!("model/s{si}/b{bi}/{name}"));
                blocks.push(BlockWeights {
                    ln1_g: t("ln1_g")?,
                    ln1_b: t("ln1_b")?,
                    qkv_w: t("qkv_w")?,
                    qkv_b: t("qkv_b")?,
                    proj_w: t("proj_w")?,
                    proj_b: t("proj_b")?,
                    ln2_g: t("ln2_g")?,
                    ln2_b: t("ln2_b")?,
                    fc1_w: t("fc1_w")?,
                    fc1_b: t("fc1_b")?,
                    fc2_w: t("fc2_w")?,
                    fc2_b: t("fc2_b")?,
                    embed_dim: stage.embed_dim,
                    num_heads: stage.num_heads,
                });
            }
            let merge = if si + 1 < config.stages.len() {
                Some((
                    self.load_tensor(&format!("model/s{si}/merge_w"))?,
                    self.load_tensor(&format!("model/s{si}/merge_b"))?,
                ))
            } else {
                None
            };
            stages.push(StageWeights { blocks, merge });
        }
        let cls_token = if matches!(config.family, Family::Vit | Family::Deit) {
            Some(self.load_tensor("model/cls_token")?)
        } else {
            None
        };
        let weights = ModelWeights {
            patch_w: self.load_tensor("model/patch_w")?,
            patch_b: self.load_tensor("model/patch_b")?,
            cls_token,
            pos_embed: self.load_tensor("model/pos_embed")?,
            stages,
            final_g: self.load_tensor("model/final_g")?,
            final_b: self.load_tensor("model/final_b")?,
            head_w: self.load_tensor("model/head_w")?,
            head_b: self.load_tensor("model/head_b")?,
        };
        let model = VitModel::from_weights(config, weights);

        if self.method != "QUQ" {
            return Err(StoreError::Unsupported(format!(
                "artifact was fitted by {:?}; this loader only restores QUQ tables",
                self.method
            )));
        }
        let acts = match self.load_site(ACTIVATION_PARAMS_KEY)? {
            Chunk::ActivationParams(v) => v,
            _ => {
                return Err(StoreError::Format(
                    "params/activations chunk has the wrong kind".into(),
                ))
            }
        };
        let wparams = match self.load_site(WEIGHT_PARAMS_KEY)? {
            Chunk::WeightParams(v) => v,
            _ => {
                return Err(StoreError::Format(
                    "params/weights chunk has the wrong kind".into(),
                ))
            }
        };

        let mut quantized = BTreeMap::new();
        for (site, _) in &wparams {
            let qub = self.load_qub(*site)?;
            quantized.insert(*site, qub.dequantize());
        }
        let activations: BTreeMap<_, _> = acts
            .into_iter()
            .map(|(k, p)| {
                (
                    k,
                    Box::new(p) as Box<dyn quq_core::quantizer::FittedQuantizer>,
                )
            })
            .collect();
        let weight_quantizers: BTreeMap<_, _> = wparams
            .into_iter()
            .map(|(s, p)| {
                (
                    s,
                    Box::new(p) as Box<dyn quq_core::quantizer::FittedQuantizer>,
                )
            })
            .collect();
        let tables = PtqTables::from_parts(
            self.ptq,
            "QUQ",
            activations,
            weight_quantizers,
            quantized,
            BTreeMap::new(),
        );
        Ok((model, tables))
    }
}

/// Reads a block at `offset` followed by its CRC-32, verifying it.
fn read_checked_block(
    storage: &dyn Storage,
    key: &str,
    offset: u64,
    len: u64,
    section: &str,
) -> Result<Vec<u8>, StoreError> {
    let total = len
        .checked_add(4)
        .ok_or_else(|| StoreError::Format(format!("{section} block length {len} overflows u64")))?;
    // `read_range` clamps `total` against the real object size before
    // allocating anything, so a hostile declared length stays harmless.
    let mut bytes = storage.read_range(key, offset, total)?;
    let crc_bytes = bytes.split_off(len as usize);
    quq_obs::add("store.bytes_read", total);
    let expected = u32::from_le_bytes(crc_bytes.try_into().expect("sized"));
    let actual = crc32(&bytes);
    if expected != actual {
        quq_obs::add("store.checksum_failures", 1);
        return Err(StoreError::Checksum {
            section: section.to_string(),
            expected,
            actual,
        });
    }
    Ok(bytes)
}
