//! Memory-mapped artifact reads: `mmap(2)` bound by hand (the workspace is
//! std-only, no `libc` crate — same style as the serve reactor's epoll
//! bindings), wrapped in a safe [`Mapping`], and exposed as the
//! [`MmapStorage`] backend whose range reads **borrow** from the mapping
//! instead of copying.
//!
//! ## Why single-file
//!
//! A general multi-key mmap store would have to hand out `&[u8]` borrows
//! into mappings it might later replace — an unsafe lifetime knot. QUQM
//! never needs that: the reader opens exactly one artifact, so
//! [`MmapStorage`] maps exactly one file at construction and keeps the
//! mapping alive as long as the storage itself. Every borrow handed out by
//! [`Storage::read_range_ref`] is tied to the storage's lifetime by plain
//! safe Rust.
//!
//! ## Why the mapped bytes stay valid
//!
//! The safety argument (spelled out in DESIGN.md §12) rests on how
//! artifacts are written: [`crate::storage::FsStorage::write`] only ever
//! *replaces* an artifact via temp-file + `rename(2)`. A rename unlinks
//! the old directory entry but the old inode — the one this mapping is
//! backed by — lives on until the last reference (our mapping) goes away.
//! Nothing in this codebase truncates or rewrites an artifact in place, so
//! a `Mapping` never observes its pages change or vanish, and reads
//! through it cannot fault. A hostile actor with write access to the
//! file could of course violate this from outside the process — the same
//! actor could corrupt the file between a classic `read` and its CRC
//! check, so mmap adds no new trust assumption: every chunk is still
//! CRC-verified before use.

use std::fs::File;
use std::io;
use std::os::fd::AsRawFd;
use std::path::Path;
use std::ptr::NonNull;

use crate::storage::{check_range, ByteView, Storage};
use crate::StoreError;

const PROT_READ: i32 = 0x1;
const MAP_PRIVATE: i32 = 0x02;

extern "C" {
    fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
    fn munmap(addr: *mut u8, len: usize) -> i32;
}

/// A read-only, private memory mapping of an entire file.
///
/// Dereferences to `&[u8]`; unmapped on drop. `Send + Sync` because the
/// pages are mapped `PROT_READ` and never remapped: shared references to
/// immutable memory are safe to move and share across threads.
pub struct Mapping {
    /// Base address (`None` stands in for the empty-file case: mapping
    /// zero bytes is `EINVAL`, so empty files get a dangling-but-unused
    /// pointer and no munmap).
    ptr: Option<NonNull<u8>>,
    len: usize,
}

// SAFETY: the mapping is PROT_READ + MAP_PRIVATE and never mutated or
// remapped after construction; &Mapping only ever yields &[u8].
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Maps all of `file` read-only.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when stat or `mmap(2)` fails.
    pub fn of_file(file: &File) -> Result<Mapping, StoreError> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            StoreError::Format(format!("file of {len} bytes exceeds the address space"))
        })?;
        if len == 0 {
            // mmap of zero bytes is EINVAL; an empty mapping needs no pages.
            return Ok(Mapping { ptr: None, len: 0 });
        }
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        // MAP_FAILED is (void*)-1, not null.
        if ptr as isize == -1 {
            return Err(StoreError::Io(io::Error::last_os_error()));
        }
        let ptr = NonNull::new(ptr)
            .ok_or_else(|| StoreError::Io(io::Error::other("mmap returned the null page")))?;
        Ok(Mapping {
            ptr: Some(ptr),
            len,
        })
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        match self.ptr {
            // SAFETY: ptr/len describe a live PROT_READ mapping that stays
            // valid for self's lifetime (unmapped only in Drop).
            Some(p) => unsafe { std::slice::from_raw_parts(p.as_ptr(), self.len) },
            None => &[],
        }
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        if let Some(p) = self.ptr {
            // SAFETY: exactly the region mmap returned; mapped once,
            // unmapped once. Failure here is unreportable and harmless
            // (the address space leaks, nothing dangles).
            unsafe { munmap(p.as_ptr(), self.len) };
        }
    }
}

impl std::ops::Deref for Mapping {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

/// A read-only, single-object [`Storage`] backed by one [`Mapping`].
///
/// [`Storage::read_range`] still copies (that is its contract);
/// [`Storage::read_range_ref`] is the point of this backend — it returns
/// a [`ByteView::Borrowed`] sub-slice of the mapping, so verified raw
/// chunks are served with zero copies.
pub struct MmapStorage {
    key: String,
    map: Mapping,
}

impl MmapStorage {
    /// Maps the file at `path`. The storage's single key is the file name.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the file cannot be opened or mapped.
    pub fn open_path(path: &Path) -> Result<MmapStorage, StoreError> {
        let key = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.to_string_lossy().into_owned());
        let file = File::open(path)?;
        let map = Mapping::of_file(&file)?;
        Ok(MmapStorage { key, map })
    }

    /// The whole mapped object.
    pub fn mapped(&self) -> &[u8] {
        self.map.bytes()
    }

    fn check_key(&self, key: &str) -> Result<(), StoreError> {
        if key == self.key {
            Ok(())
        } else {
            Err(StoreError::Io(io::Error::new(
                io::ErrorKind::NotFound,
                format!("mmap storage holds {:?}, not {key:?}", self.key),
            )))
        }
    }
}

impl Storage for MmapStorage {
    fn open(&self, key: &str) -> Result<u64, StoreError> {
        self.check_key(key)?;
        Ok(self.map.len() as u64)
    }

    fn read_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        Ok(self.read_range_ref(key, offset, len)?.to_vec())
    }

    fn read_range_ref(&self, key: &str, offset: u64, len: u64) -> Result<ByteView<'_>, StoreError> {
        self.check_key(key)?;
        check_range(key, offset, len, self.map.len() as u64)?;
        let bytes = &self.map.bytes()[offset as usize..(offset + len) as usize];
        Ok(ByteView::Borrowed(bytes))
    }

    fn write(&self, key: &str, _bytes: &[u8]) -> Result<(), StoreError> {
        Err(StoreError::Unsupported(format!(
            "mmap storage is read-only (write to {key:?})"
        )))
    }

    fn list(&self) -> Result<Vec<String>, StoreError> {
        Ok(vec![self.key.clone()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn temp_file(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("quq-mmap-{}-{name}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    #[test]
    fn mapping_exposes_the_file_bytes() {
        let path = temp_file("basic.bin", b"hello mapping");
        let map = Mapping::of_file(&File::open(&path).unwrap()).unwrap();
        assert_eq!(&*map, b"hello mapping");
        assert_eq!(map.len(), 13);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_files_map_as_empty_slices() {
        let path = temp_file("empty.bin", b"");
        let map = Mapping::of_file(&File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
        assert_eq!(&*map, b"");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn storage_borrows_ranges_and_rejects_overruns() {
        let path = temp_file("store.bin", b"0123456789");
        let store = MmapStorage::open_path(&path).unwrap();
        let key = path.file_name().unwrap().to_string_lossy().into_owned();
        assert_eq!(store.open(&key).unwrap(), 10);
        assert_eq!(store.list().unwrap(), vec![key.clone()]);

        let view = store.read_range_ref(&key, 2, 5).unwrap();
        assert!(matches!(view, ByteView::Borrowed(_)));
        assert_eq!(&*view, b"23456");
        assert_eq!(store.read_range(&key, 0, 10).unwrap(), b"0123456789");

        assert!(matches!(
            store.read_range_ref(&key, 8, 5),
            Err(StoreError::Format(_))
        ));
        assert!(matches!(
            store.read_range_ref("other", 0, 1),
            Err(StoreError::Io(_))
        ));
        assert!(matches!(
            store.write(&key, b"nope"),
            Err(StoreError::Unsupported(_))
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replacing_the_file_by_rename_leaves_the_mapping_intact() {
        // The safety argument in the module docs, as a test: artifacts are
        // only ever replaced via rename, and a live mapping keeps serving
        // the old inode's bytes.
        let path = temp_file("swap.bin", b"old contents");
        let store = MmapStorage::open_path(&path).unwrap();
        let key = path.file_name().unwrap().to_string_lossy().into_owned();

        let tmp = temp_file("swap.new", b"new contents!");
        std::fs::rename(&tmp, &path).unwrap();

        assert_eq!(store.read_range(&key, 0, 12).unwrap(), b"old contents");
        let _ = std::fs::remove_file(&path);
    }
}
