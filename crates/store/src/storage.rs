//! The pluggable byte-store behind QUQM artifacts.
//!
//! [`Storage`] separates the artifact *format* (header / manifest / chunk
//! layout, all CRC-checked — [`crate::reader`], [`crate::writer`]) from
//! where the bytes actually live, the same split zarrs makes between its
//! array format and `zarrs_storage` backends. An artifact is addressed by
//! a string *key* inside a store; everything the reader ever does is
//! `open` (stat) and `read_range`, everything the writer does is one
//! atomic `write`.
//!
//! Two backends ship today:
//!
//! * [`FsStorage`] — a directory of files, preserving the original
//!   behavior (atomic temp-file + fsync + rename saves, positioned
//!   reads);
//! * [`MemStorage`] — a `BTreeMap` of byte buffers for tests and for
//!   staging artifacts that never touch disk.
//!
//! ## The allocation clamp
//!
//! [`Storage::read_range`] is the single chokepoint through which every
//! artifact byte is read, and it validates `offset + len` against the
//! object's **actual** size *before* allocating the destination buffer.
//! A corrupt or hostile length field (a multi-GB `meta_len` in an
//! otherwise CRC-valid header, a manifest entry claiming an enormous
//! chunk) therefore produces a structured [`StoreError::Format`] — never
//! an attacker-sized allocation. Callers still CRC-verify what they read;
//! the clamp only guarantees the read itself is bounded by reality.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::ops::Deref;
use std::path::{Path, PathBuf};
use std::process;
use std::sync::{Arc, Mutex, PoisonError};

use crate::StoreError;

/// Bytes returned by [`Storage::read_range_ref`]: either a borrow into
/// memory the storage already holds (an mmap'ed file, a resident buffer)
/// or an owned copy when the backend has nothing to lend. Dereferences to
/// `&[u8]` either way, so callers stay agnostic.
#[derive(Debug)]
pub enum ByteView<'a> {
    /// A zero-copy borrow of the storage's own memory.
    Borrowed(&'a [u8]),
    /// A freshly allocated copy (backends that read through I/O).
    Owned(Vec<u8>),
}

impl Deref for ByteView<'_> {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        match self {
            ByteView::Borrowed(b) => b,
            ByteView::Owned(v) => v,
        }
    }
}

impl ByteView<'_> {
    /// Whether this view borrows storage memory (no copy was made).
    pub fn is_borrowed(&self) -> bool {
        matches!(self, ByteView::Borrowed(_))
    }

    /// The bytes as an owned vector (copies only if borrowed).
    pub fn into_vec(self) -> Vec<u8> {
        match self {
            ByteView::Borrowed(b) => b.to_vec(),
            ByteView::Owned(v) => v,
        }
    }
}

/// A keyed byte store that QUQM artifacts can live on.
///
/// Implementations must be safe to share across threads: the serve-side
/// model registry reads several artifacts concurrently through one store.
pub trait Storage: Send + Sync {
    /// Opens (stats) the object under `key`, returning its size in bytes.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the object does not exist or cannot be
    /// statted.
    fn open(&self, key: &str) -> Result<u64, StoreError>;

    /// Reads exactly `len` bytes at `offset` from the object under `key`.
    ///
    /// The range is validated against the object's actual size **before**
    /// any allocation, so a hostile declared length can never size a
    /// buffer past the bytes that really exist.
    ///
    /// # Errors
    ///
    /// [`StoreError::Format`] when the range overruns the object;
    /// [`StoreError::Io`] on transport failures.
    fn read_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>, StoreError>;

    /// Like [`Storage::read_range`], but allowed to **borrow** from memory
    /// the storage already holds instead of copying. The default
    /// implementation delegates to `read_range` and returns an owned view;
    /// zero-copy backends ([`crate::MmapStorage`]) override it to lend
    /// sub-slices of their mapping.
    ///
    /// # Errors
    ///
    /// Same contract as [`Storage::read_range`].
    fn read_range_ref(&self, key: &str, offset: u64, len: u64) -> Result<ByteView<'_>, StoreError> {
        self.read_range(key, offset, len).map(ByteView::Owned)
    }

    /// Atomically replaces the object under `key` with `bytes`: a reader
    /// concurrent with a write sees either the old object or the new one,
    /// never a torn mixture, and a crash mid-write never leaves a partial
    /// object under `key`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on transport failures.
    fn write(&self, key: &str, bytes: &[u8]) -> Result<(), StoreError>;

    /// Lists the keys currently stored, in sorted order.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on transport failures.
    fn list(&self) -> Result<Vec<String>, StoreError>;
}

/// Validates a `[offset, offset+len)` range against an object's size.
/// This is the bounds check every backend applies before allocating.
pub(crate) fn check_range(key: &str, offset: u64, len: u64, size: u64) -> Result<(), StoreError> {
    let end = offset.checked_add(len).ok_or_else(|| {
        StoreError::Format(format!(
            "read of {len} bytes at offset {offset} in {key:?} overflows u64"
        ))
    })?;
    if end > size {
        return Err(StoreError::Format(format!(
            "read of {len} bytes at offset {offset} in {key:?} overruns the {size}-byte object"
        )));
    }
    Ok(())
}

/// Filesystem-backed [`Storage`]: every key is a file under one root
/// directory. Writes go to a pid-suffixed sibling temp file, are fsynced,
/// and renamed into place — the atomicity contract the artifact writer
/// has always had.
pub struct FsStorage {
    root: PathBuf,
    /// Fault injection for tests: when `Some(n)`, every `write` fails with
    /// an injected I/O error after `n` bytes have reached the temp file —
    /// exercising the mid-save-failure cleanup path deterministically.
    fail_write_after: Option<usize>,
}

impl FsStorage {
    /// A store rooted at `root`. The directory itself is created lazily on
    /// first write.
    pub fn new(root: impl Into<PathBuf>) -> FsStorage {
        FsStorage {
            root: root.into(),
            fail_write_after: None,
        }
    }

    /// A store whose writes fail (with [`StoreError::Io`]) once `n` bytes
    /// of an object have been written to its temp file. Test-only fault
    /// injection: proves a mid-save failure leaves no `.tmp.` litter.
    pub fn failing_after(root: impl Into<PathBuf>, n: usize) -> FsStorage {
        FsStorage {
            root: root.into(),
            fail_write_after: Some(n),
        }
    }

    fn object_path(&self, key: &str) -> PathBuf {
        self.root.join(key)
    }
}

/// Unlinks a temp file on drop unless the write reached its rename —
/// the cleanup runs on *every* early exit from [`FsStorage::write`]
/// (write error, fsync error, rename error, or a panic in between), so a
/// failed save can never leave a pid-suffixed temp file behind.
struct TempGuard<'a> {
    path: &'a Path,
    armed: bool,
}

impl TempGuard<'_> {
    /// The object now lives at its final path; the temp file is gone.
    fn defuse(&mut self) {
        self.armed = false;
    }
}

impl Drop for TempGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let _ = fs::remove_file(self.path);
        }
    }
}

impl Storage for FsStorage {
    fn open(&self, key: &str) -> Result<u64, StoreError> {
        Ok(fs::metadata(self.object_path(key))?.len())
    }

    fn read_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        let file = File::open(self.object_path(key))?;
        let size = file.metadata()?.len();
        check_range(key, offset, len, size)?;
        // Only now, with the range proven to exist, size the buffer.
        let mut bytes = vec![0u8; len as usize];
        use std::os::unix::fs::FileExt;
        file.read_exact_at(&mut bytes, offset)?;
        Ok(bytes)
    }

    fn write(&self, key: &str, bytes: &[u8]) -> Result<(), StoreError> {
        let path = self.object_path(key);
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let tmp = path.with_extension(format!("tmp.{}", process::id()));
        let mut guard = TempGuard {
            path: &tmp,
            armed: true,
        };
        {
            let mut f = open_exclusive(&tmp)?;
            if let Some(n) = self.fail_write_after {
                // Injected fault: land `n` real bytes, then fail exactly
                // like a full disk would mid-stream.
                f.write_all(&bytes[..n.min(bytes.len())])?;
                return Err(StoreError::Io(std::io::Error::other(format!(
                    "injected write failure after {n} bytes"
                ))));
            }
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        guard.defuse();
        Ok(())
    }

    fn list(&self) -> Result<Vec<String>, StoreError> {
        let mut keys = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                let name = entry.file_name().to_string_lossy().into_owned();
                // In-progress temp files are not objects.
                if !name.contains(".tmp.") {
                    keys.push(name);
                }
            }
        }
        keys.sort();
        Ok(keys)
    }
}

fn open_exclusive(path: &std::path::Path) -> Result<File, StoreError> {
    OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(path)
        .map_err(StoreError::Io)
}

/// In-memory [`Storage`]: a map of byte buffers. Useful for tests (no
/// temp files, no fsync latency) and as the reference implementation of
/// the trait's contract.
#[derive(Default)]
pub struct MemStorage {
    objects: Mutex<BTreeMap<String, Arc<Vec<u8>>>>,
}

impl MemStorage {
    /// An empty store.
    pub fn new() -> MemStorage {
        MemStorage::default()
    }

    /// The raw bytes currently stored under `key`, if any.
    pub fn get(&self, key: &str) -> Option<Arc<Vec<u8>>> {
        self.lock().get(key).cloned()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Arc<Vec<u8>>>> {
        self.objects.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl Storage for MemStorage {
    fn open(&self, key: &str) -> Result<u64, StoreError> {
        self.lock().get(key).map(|b| b.len() as u64).ok_or_else(|| {
            StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("no object under key {key:?}"),
            ))
        })
    }

    fn read_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        let bytes = self.get(key).ok_or_else(|| {
            StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("no object under key {key:?}"),
            ))
        })?;
        check_range(key, offset, len, bytes.len() as u64)?;
        Ok(bytes[offset as usize..(offset + len) as usize].to_vec())
    }

    fn write(&self, key: &str, bytes: &[u8]) -> Result<(), StoreError> {
        // The map swap is atomic under the lock: readers holding an Arc to
        // the old buffer keep a coherent old object.
        self.lock()
            .insert(key.to_string(), Arc::new(bytes.to_vec()));
        Ok(())
    }

    fn list(&self) -> Result<Vec<String>, StoreError> {
        Ok(self.lock().keys().cloned().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_storage_roundtrips_and_lists() {
        let store = MemStorage::new();
        store.write("a", b"hello").unwrap();
        store.write("b", b"").unwrap();
        assert_eq!(store.open("a").unwrap(), 5);
        assert_eq!(store.read_range("a", 1, 3).unwrap(), b"ell");
        assert_eq!(store.list().unwrap(), vec!["a", "b"]);
        assert!(matches!(store.open("missing"), Err(StoreError::Io(_))));
    }

    #[test]
    fn read_range_rejects_overruns_before_allocating() {
        let store = MemStorage::new();
        store.write("k", b"0123456789").unwrap();
        // Past-the-end, overflowing, and absurdly large ranges all fail
        // with a structured Format error (the huge `len` is never used to
        // size a buffer — this test would OOM if it were).
        assert!(matches!(
            store.read_range("k", 5, 6),
            Err(StoreError::Format(_))
        ));
        assert!(matches!(
            store.read_range("k", u64::MAX, 2),
            Err(StoreError::Format(_))
        ));
        assert!(matches!(
            store.read_range("k", 0, u64::MAX / 2),
            Err(StoreError::Format(_))
        ));
        assert_eq!(store.read_range("k", 0, 10).unwrap(), b"0123456789");
    }

    #[test]
    fn fs_storage_matches_mem_storage_behavior() {
        let root = std::env::temp_dir().join(format!("quq-fsstore-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let store = FsStorage::new(&root);
        store.write("obj.bin", b"abcdef").unwrap();
        assert_eq!(store.open("obj.bin").unwrap(), 6);
        assert_eq!(store.read_range("obj.bin", 2, 3).unwrap(), b"cde");
        assert!(matches!(
            store.read_range("obj.bin", 4, 3),
            Err(StoreError::Format(_))
        ));
        assert!(matches!(
            store.read_range("obj.bin", 0, u64::MAX),
            Err(StoreError::Format(_))
        ));
        assert_eq!(store.list().unwrap(), vec!["obj.bin"]);
        // Overwrite is atomic-or-old: afterwards the new bytes are there.
        store.write("obj.bin", b"xy").unwrap();
        assert_eq!(store.read_range("obj.bin", 0, 2).unwrap(), b"xy");
        let _ = fs::remove_dir_all(&root);
    }
}
