//! Serializing a calibrated model into a QUQM artifact.
//!
//! Since v2 the writer runs a **codec trial** per chunk: each payload is
//! encoded under every candidate stack for its kind (f32 tensors and
//! params tables: `byte-shuffle(4)+lz` and `lz`; QUB records: `lz`) and
//! the smallest wins — unless the best saving is under 2%
//! ([`crate::codec::MIN_SAVINGS_PERMILLE`]), in which case the chunk
//! stays raw. QUB payloads are already near-entropy-packed and routinely
//! take this raw path; the decision lands in the manifest (the declared
//! stack *is* the record) and in the returned [`SaveReport`], which
//! `storebench --codec` turns into per-stack columns.

use std::path::Path;

use quq_core::pipeline::PtqTables;
use quq_core::qub::QubCodec;
use quq_core::scheme::QuqParams;
use quq_core::write_qub_tensor;
use quq_tensor::Tensor;
use quq_vit::{ModelConfig, ModelWeights, VitModel};

use crate::codec::{CodecStack, MIN_SAVINGS_PERMILLE};
use crate::crc32::crc32;
use crate::format::{
    encode_activation_params, encode_manifest, encode_manifest_v1, encode_metadata,
    encode_weight_params, qub_key, ChunkInfo, ChunkKind, ACTIVATION_PARAMS_KEY, BLOCK_TENSORS,
    HEADER_LEN, MAGIC, VERSION, VERSION_V1, WEIGHT_PARAMS_KEY,
};
use crate::storage::{FsStorage, Storage};
use crate::StoreError;

/// How the writer picks each chunk's codec stack.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum CodecChoice {
    /// Trial every candidate stack per chunk, keep raw unless compression
    /// wins ≥ 2%. The default.
    #[default]
    Auto,
    /// Store every chunk raw (still a v2 manifest unless the version says
    /// otherwise).
    Raw,
    /// Apply exactly this stack to **every** chunk, even when it loses to
    /// raw. Exists so tests can force compressed QUB chunks and exercise
    /// the decode paths compression would otherwise skip.
    Force(CodecStack),
}

/// Knobs for [`ArtifactWriter::save_with`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteOptions {
    /// Format version to emit: [`VERSION`] (2) or [`VERSION_V1`]. v1 only
    /// accepts [`CodecChoice::Raw`]-equivalent output.
    pub version: u32,
    /// Codec selection policy.
    pub codec: CodecChoice,
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions {
            version: VERSION,
            codec: CodecChoice::Auto,
        }
    }
}

impl WriteOptions {
    /// v1 output (raw chunks, v1 manifest) — for compat fixtures and
    /// baseline comparisons.
    pub fn v1() -> WriteOptions {
        WriteOptions {
            version: VERSION_V1,
            codec: CodecChoice::Raw,
        }
    }
}

/// One chunk's line in a [`SaveReport`].
#[derive(Debug, Clone)]
pub struct ChunkReport {
    /// Manifest key.
    pub key: String,
    /// Payload kind.
    pub kind: ChunkKind,
    /// Decoded payload bytes.
    pub raw_len: u64,
    /// Stored payload bytes (after the chosen stack).
    pub stored_len: u64,
    /// The stack the trial chose (empty = raw won).
    pub stack: CodecStack,
}

/// What a save actually wrote: total size plus the per-chunk codec
/// decisions, for benchmark reporting.
#[derive(Debug, Clone)]
pub struct SaveReport {
    /// Whole-artifact size in bytes.
    pub total_bytes: u64,
    /// Format version written.
    pub version: u32,
    /// Per-chunk decisions, in manifest order.
    pub chunks: Vec<ChunkReport>,
}

impl SaveReport {
    /// Sums `(raw, stored)` bytes over chunks of one kind.
    pub fn kind_totals(&self, kind: ChunkKind) -> (u64, u64) {
        self.chunks
            .iter()
            .filter(|c| c.kind == kind)
            .fold((0, 0), |(r, s), c| (r + c.raw_len, s + c.stored_len))
    }
}

/// Writes QUQM artifacts.
pub struct ArtifactWriter;

/// Pairs every model-tensor chunk key with its tensor, in the canonical
/// wire order (must agree with [`crate::format::model_tensor_keys`]).
pub(crate) fn model_tensor_pairs<'a>(
    config: &ModelConfig,
    w: &'a ModelWeights,
) -> Vec<(String, &'a Tensor)> {
    let mut out: Vec<(String, &'a Tensor)> = vec![
        ("model/patch_w".into(), &w.patch_w),
        ("model/patch_b".into(), &w.patch_b),
    ];
    if let Some(cls) = &w.cls_token {
        out.push(("model/cls_token".into(), cls));
    }
    out.push(("model/pos_embed".into(), &w.pos_embed));
    for (si, stage) in w.stages.iter().enumerate() {
        for (bi, b) in stage.blocks.iter().enumerate() {
            let tensors: [&Tensor; 12] = [
                &b.ln1_g, &b.ln1_b, &b.qkv_w, &b.qkv_b, &b.proj_w, &b.proj_b, &b.ln2_g, &b.ln2_b,
                &b.fc1_w, &b.fc1_b, &b.fc2_w, &b.fc2_b,
            ];
            for (name, t) in BLOCK_TENSORS.iter().zip(tensors) {
                out.push((format!("model/s{si}/b{bi}/{name}"), t));
            }
        }
        if let Some((mw, mb)) = &stage.merge {
            out.push((format!("model/s{si}/merge_w"), mw));
            out.push((format!("model/s{si}/merge_b"), mb));
        }
    }
    out.push(("model/final_g".into(), &w.final_g));
    out.push(("model/final_b".into(), &w.final_b));
    out.push(("model/head_w".into(), &w.head_w));
    out.push(("model/head_b".into(), &w.head_b));
    debug_assert_eq!(
        out.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(),
        crate::format::model_tensor_keys(config)
    );
    out
}

fn quq_params_of(
    q: &dyn quq_core::quantizer::FittedQuantizer,
    what: &str,
) -> Result<QuqParams, StoreError> {
    q.quq_params().copied().ok_or_else(|| {
        StoreError::Unsupported(format!(
            "{what} quantizer {:?} is not a QUQ quantizer; only QUQ tables can be stored",
            q.describe()
        ))
    })
}

/// Candidate stacks the Auto trial runs for a chunk kind. f32 payloads
/// (tensors and the params tables, whose bulk is raw `f32` scale bits)
/// get the shuffle variants — the lane transpose exposes the low-entropy
/// sign/exponent byte, which the range coder then squeezes; QUB payloads
/// are packed codes with no lane structure, so only whole-payload codecs
/// are worth measuring.
fn candidate_stacks(kind: ChunkKind) -> Vec<CodecStack> {
    match kind {
        ChunkKind::TensorF32 | ChunkKind::ActivationParams | ChunkKind::WeightParams => {
            vec![
                CodecStack::shuffle_rc(4),
                CodecStack::shuffle_lz(4),
                CodecStack::lz(),
            ]
        }
        ChunkKind::Qub => vec![CodecStack::lz(), CodecStack::rc()],
    }
}

/// Runs the codec decision for one chunk: `(stored_bytes, stack)`.
fn choose_encoding(kind: ChunkKind, raw: Vec<u8>, choice: &CodecChoice) -> (Vec<u8>, CodecStack) {
    match choice {
        CodecChoice::Raw => (raw, CodecStack::raw()),
        CodecChoice::Force(stack) => {
            let stored = stack.encode(&raw);
            (stored, stack.clone())
        }
        CodecChoice::Auto => {
            let mut best: Option<(Vec<u8>, CodecStack)> = None;
            for stack in candidate_stacks(kind) {
                let stored = stack.encode(&raw);
                // A candidate past the reader's decode-expansion cap
                // (possible for the range coder on near-constant data)
                // would be rejected at open time — never pick it.
                if (raw.len() as u64)
                    > (stored.len() as u64).saturating_mul(crate::format::MAX_DECODE_EXPANSION)
                {
                    continue;
                }
                if best.as_ref().is_none_or(|(b, _)| stored.len() < b.len()) {
                    best = Some((stored, stack));
                }
            }
            match best {
                // Raw keeps the chunk unless the winner saves ≥ 2%.
                Some((stored, stack))
                    if (stored.len() as u64).saturating_mul(1000)
                        <= (raw.len() as u64).saturating_mul(1000 - MIN_SAVINGS_PERMILLE) =>
                {
                    (stored, stack)
                }
                _ => (raw, CodecStack::raw()),
            }
        }
    }
}

impl ArtifactWriter {
    /// Serializes `model` + `tables` into a QUQM v2 artifact at `path`,
    /// with per-chunk codecs chosen automatically.
    ///
    /// The write goes to a sibling temp file first and is atomically
    /// renamed into place, so a crash mid-save never leaves a truncated
    /// artifact at `path`. Returns the artifact size in bytes.
    ///
    /// Errors with [`StoreError::Unsupported`] if the tables were not fitted
    /// by the QUQ method, or if any weight site lacks its original weight
    /// tensor (re-quantized tables only; `calibrate` always records them).
    pub fn save(model: &VitModel, tables: &PtqTables, path: &Path) -> Result<u64, StoreError> {
        Ok(Self::save_with(model, tables, path, &WriteOptions::default())?.total_bytes)
    }

    /// [`ArtifactWriter::save`] with explicit version/codec options,
    /// returning the full per-chunk [`SaveReport`].
    pub fn save_with(
        model: &VitModel,
        tables: &PtqTables,
        path: &Path,
        options: &WriteOptions,
    ) -> Result<SaveReport, StoreError> {
        let dir = path.parent().map(Path::to_path_buf).unwrap_or_default();
        let key = path
            .file_name()
            .ok_or_else(|| StoreError::Format(format!("artifact path {path:?} has no file name")))?
            .to_string_lossy()
            .into_owned();
        Self::save_on_with(model, tables, &FsStorage::new(dir), &key, options)
    }

    /// Serializes `model` + `tables` into the object `key` on any
    /// [`Storage`] backend. The whole artifact is assembled in memory and
    /// handed to [`Storage::write`], which replaces the object atomically.
    pub fn save_on(
        model: &VitModel,
        tables: &PtqTables,
        storage: &dyn Storage,
        key: &str,
    ) -> Result<u64, StoreError> {
        Ok(Self::save_on_with(model, tables, storage, key, &WriteOptions::default())?.total_bytes)
    }

    /// [`ArtifactWriter::save_on`] with explicit version/codec options,
    /// returning the full per-chunk [`SaveReport`].
    pub fn save_on_with(
        model: &VitModel,
        tables: &PtqTables,
        storage: &dyn Storage,
        key: &str,
        options: &WriteOptions,
    ) -> Result<SaveReport, StoreError> {
        let _span = quq_obs::span("store.save");
        if tables.method_name() != "QUQ" {
            return Err(StoreError::Unsupported(format!(
                "tables were fitted by {:?}; only QUQ tables can be stored",
                tables.method_name()
            )));
        }
        match options.version {
            VERSION => {}
            VERSION_V1 => {
                if !matches!(options.codec, CodecChoice::Raw) {
                    return Err(StoreError::Unsupported(
                        "v1 artifacts cannot carry codec stacks; use CodecChoice::Raw".into(),
                    ));
                }
            }
            v => {
                return Err(StoreError::Unsupported(format!(
                    "cannot write format version {v}"
                )))
            }
        }
        if let CodecChoice::Force(stack) = &options.codec {
            stack.validate()?;
        }

        let config = model.config();
        let mut activations: Vec<_> = Vec::new();
        for (key, q) in tables.activations() {
            activations.push((*key, quq_params_of(q, "activation")?));
        }
        let mut weight_params: Vec<_> = Vec::new();
        for (site, q) in tables.weight_quantizers() {
            weight_params.push((*site, quq_params_of(q, "weight")?));
        }

        // Assemble every raw chunk payload in wire order: model tensors,
        // the two quantizer tables, then one QUB record per weight site.
        let mut raw_chunks: Vec<(String, ChunkKind, Vec<usize>, Vec<u8>)> = Vec::new();
        for (key, t) in model_tensor_pairs(config, model.weights()) {
            let mut bytes = Vec::with_capacity(t.data().len() * 4);
            for v in t.data() {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
            raw_chunks.push((key, ChunkKind::TensorF32, t.shape().to_vec(), bytes));
        }
        raw_chunks.push((
            ACTIVATION_PARAMS_KEY.into(),
            ChunkKind::ActivationParams,
            vec![],
            encode_activation_params(&activations),
        ));
        raw_chunks.push((
            WEIGHT_PARAMS_KEY.into(),
            ChunkKind::WeightParams,
            vec![],
            encode_weight_params(&weight_params),
        ));
        for (site, params) in &weight_params {
            let w = tables.original_weight(site).ok_or_else(|| {
                StoreError::Unsupported(format!(
                    "weight site {site} has no recorded original weight tensor"
                ))
            })?;
            let qub = QubCodec::new(*params).encode_tensor(w);
            let mut bytes = Vec::new();
            write_qub_tensor(&mut bytes, &qub)?;
            raw_chunks.push((qub_key(*site), ChunkKind::Qub, w.shape().to_vec(), bytes));
        }

        // Codec trial: turn each raw payload into its stored form.
        type EncodedChunk = (String, ChunkKind, Vec<usize>, u64, Vec<u8>, CodecStack);
        let mut chunks: Vec<EncodedChunk> = Vec::with_capacity(raw_chunks.len());
        for (key, kind, shape, raw) in raw_chunks {
            let raw_len = raw.len() as u64;
            let (stored, stack) = choose_encoding(kind, raw, &options.codec);
            chunks.push((key, kind, shape, raw_len, stored, stack));
        }

        let metadata = encode_metadata(config, tables.config(), tables.method_name());

        // The manifest's encoded length does not depend on the offset
        // values, so encode once with placeholder offsets to learn where
        // the chunk region starts, then fill in the real offsets.
        let mut entries: Vec<ChunkInfo> = chunks
            .iter()
            .map(|(key, kind, shape, raw_len, stored, stack)| ChunkInfo {
                key: key.clone(),
                kind: *kind,
                offset: 0,
                length: stored.len() as u64,
                raw_length: *raw_len,
                crc: crc32(stored),
                stack: stack.clone(),
                shape: shape.clone(),
            })
            .collect();
        let encode = |entries: &[ChunkInfo]| -> Result<Vec<u8>, StoreError> {
            if options.version == VERSION_V1 {
                encode_manifest_v1(entries)
            } else {
                Ok(encode_manifest(entries))
            }
        };
        let manifest_len = encode(&entries)?.len() as u64;
        let mut offset = HEADER_LEN + metadata.len() as u64 + 4 + manifest_len + 4;
        for e in &mut entries {
            e.offset = offset;
            offset += e.length;
        }
        let manifest = encode(&entries)?;
        debug_assert_eq!(manifest.len() as u64, manifest_len);

        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&options.version.to_le_bytes());
        header.extend_from_slice(&(metadata.len() as u64).to_le_bytes());
        header.extend_from_slice(&manifest_len.to_le_bytes());
        let header_crc = crc32(&header);
        header.extend_from_slice(&header_crc.to_le_bytes());

        let mut out = Vec::with_capacity(offset as usize);
        out.extend_from_slice(&header);
        out.extend_from_slice(&metadata);
        out.extend_from_slice(&crc32(&metadata).to_le_bytes());
        out.extend_from_slice(&manifest);
        out.extend_from_slice(&crc32(&manifest).to_le_bytes());
        for (_, _, _, _, stored, _) in &chunks {
            out.extend_from_slice(stored);
        }
        let total = out.len() as u64;
        debug_assert_eq!(total, offset);
        storage.write(key, &out)?;
        quq_obs::add("store.bytes_written", total);
        Ok(SaveReport {
            total_bytes: total,
            version: options.version,
            chunks: chunks
                .into_iter()
                .map(|(key, kind, _, raw_len, stored, stack)| ChunkReport {
                    key,
                    kind,
                    raw_len,
                    stored_len: stored.len() as u64,
                    stack,
                })
                .collect(),
        })
    }
}
