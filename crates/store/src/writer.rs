//! Serializing a calibrated model into a QUQM artifact.

use std::path::Path;

use quq_core::pipeline::PtqTables;
use quq_core::qub::QubCodec;
use quq_core::scheme::QuqParams;
use quq_core::write_qub_tensor;
use quq_tensor::Tensor;
use quq_vit::{ModelConfig, ModelWeights, VitModel};

use crate::crc32::crc32;
use crate::format::{
    encode_activation_params, encode_manifest, encode_metadata, encode_weight_params, qub_key,
    ChunkInfo, ChunkKind, ACTIVATION_PARAMS_KEY, BLOCK_TENSORS, HEADER_LEN, MAGIC, VERSION,
    WEIGHT_PARAMS_KEY,
};
use crate::storage::{FsStorage, Storage};
use crate::StoreError;

/// Writes QUQM artifacts.
pub struct ArtifactWriter;

/// Pairs every model-tensor chunk key with its tensor, in the canonical
/// wire order (must agree with [`crate::format::model_tensor_keys`]).
pub(crate) fn model_tensor_pairs<'a>(
    config: &ModelConfig,
    w: &'a ModelWeights,
) -> Vec<(String, &'a Tensor)> {
    let mut out: Vec<(String, &'a Tensor)> = vec![
        ("model/patch_w".into(), &w.patch_w),
        ("model/patch_b".into(), &w.patch_b),
    ];
    if let Some(cls) = &w.cls_token {
        out.push(("model/cls_token".into(), cls));
    }
    out.push(("model/pos_embed".into(), &w.pos_embed));
    for (si, stage) in w.stages.iter().enumerate() {
        for (bi, b) in stage.blocks.iter().enumerate() {
            let tensors: [&Tensor; 12] = [
                &b.ln1_g, &b.ln1_b, &b.qkv_w, &b.qkv_b, &b.proj_w, &b.proj_b, &b.ln2_g, &b.ln2_b,
                &b.fc1_w, &b.fc1_b, &b.fc2_w, &b.fc2_b,
            ];
            for (name, t) in BLOCK_TENSORS.iter().zip(tensors) {
                out.push((format!("model/s{si}/b{bi}/{name}"), t));
            }
        }
        if let Some((mw, mb)) = &stage.merge {
            out.push((format!("model/s{si}/merge_w"), mw));
            out.push((format!("model/s{si}/merge_b"), mb));
        }
    }
    out.push(("model/final_g".into(), &w.final_g));
    out.push(("model/final_b".into(), &w.final_b));
    out.push(("model/head_w".into(), &w.head_w));
    out.push(("model/head_b".into(), &w.head_b));
    debug_assert_eq!(
        out.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(),
        crate::format::model_tensor_keys(config)
    );
    out
}

fn quq_params_of(
    q: &dyn quq_core::quantizer::FittedQuantizer,
    what: &str,
) -> Result<QuqParams, StoreError> {
    q.quq_params().copied().ok_or_else(|| {
        StoreError::Unsupported(format!(
            "{what} quantizer {:?} is not a QUQ quantizer; only QUQ tables can be stored",
            q.describe()
        ))
    })
}

impl ArtifactWriter {
    /// Serializes `model` + `tables` into a QUQM artifact at `path`.
    ///
    /// The write goes to a sibling temp file first and is atomically
    /// renamed into place, so a crash mid-save never leaves a truncated
    /// artifact at `path`. Returns the artifact size in bytes.
    ///
    /// Errors with [`StoreError::Unsupported`] if the tables were not fitted
    /// by the QUQ method, or if any weight site lacks its original weight
    /// tensor (re-quantized tables only; `calibrate` always records them).
    pub fn save(model: &VitModel, tables: &PtqTables, path: &Path) -> Result<u64, StoreError> {
        let dir = path.parent().map(Path::to_path_buf).unwrap_or_default();
        let key = path
            .file_name()
            .ok_or_else(|| StoreError::Format(format!("artifact path {path:?} has no file name")))?
            .to_string_lossy()
            .into_owned();
        Self::save_on(model, tables, &FsStorage::new(dir), &key)
    }

    /// Serializes `model` + `tables` into the object `key` on any
    /// [`Storage`] backend. The whole artifact is assembled in memory and
    /// handed to [`Storage::write`], which replaces the object atomically.
    pub fn save_on(
        model: &VitModel,
        tables: &PtqTables,
        storage: &dyn Storage,
        key: &str,
    ) -> Result<u64, StoreError> {
        let _span = quq_obs::span("store.save");
        if tables.method_name() != "QUQ" {
            return Err(StoreError::Unsupported(format!(
                "tables were fitted by {:?}; only QUQ tables can be stored",
                tables.method_name()
            )));
        }

        let config = model.config();
        let mut activations: Vec<_> = Vec::new();
        for (key, q) in tables.activations() {
            activations.push((*key, quq_params_of(q, "activation")?));
        }
        let mut weight_params: Vec<_> = Vec::new();
        for (site, q) in tables.weight_quantizers() {
            weight_params.push((*site, quq_params_of(q, "weight")?));
        }

        // Assemble every chunk payload in wire order: model tensors, the
        // two quantizer tables, then one QUB record per weight site.
        let mut chunks: Vec<(String, ChunkKind, Vec<usize>, Vec<u8>)> = Vec::new();
        for (key, t) in model_tensor_pairs(config, model.weights()) {
            let mut bytes = Vec::with_capacity(t.data().len() * 4);
            for v in t.data() {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
            chunks.push((key, ChunkKind::TensorF32, t.shape().to_vec(), bytes));
        }
        chunks.push((
            ACTIVATION_PARAMS_KEY.into(),
            ChunkKind::ActivationParams,
            vec![],
            encode_activation_params(&activations),
        ));
        chunks.push((
            WEIGHT_PARAMS_KEY.into(),
            ChunkKind::WeightParams,
            vec![],
            encode_weight_params(&weight_params),
        ));
        for (site, params) in &weight_params {
            let w = tables.original_weight(site).ok_or_else(|| {
                StoreError::Unsupported(format!(
                    "weight site {site} has no recorded original weight tensor"
                ))
            })?;
            let qub = QubCodec::new(*params).encode_tensor(w);
            let mut bytes = Vec::new();
            write_qub_tensor(&mut bytes, &qub)?;
            chunks.push((qub_key(*site), ChunkKind::Qub, w.shape().to_vec(), bytes));
        }

        let metadata = encode_metadata(config, tables.config(), tables.method_name());

        // The manifest's encoded length does not depend on the offset
        // values, so encode once with placeholder offsets to learn where
        // the chunk region starts, then fill in the real offsets.
        let mut entries: Vec<ChunkInfo> = chunks
            .iter()
            .map(|(key, kind, shape, bytes)| ChunkInfo {
                key: key.clone(),
                kind: *kind,
                offset: 0,
                length: bytes.len() as u64,
                crc: crc32(bytes),
                shape: shape.clone(),
            })
            .collect();
        let manifest_len = encode_manifest(&entries).len() as u64;
        let mut offset = HEADER_LEN + metadata.len() as u64 + 4 + manifest_len + 4;
        for e in &mut entries {
            e.offset = offset;
            offset += e.length;
        }
        let manifest = encode_manifest(&entries);
        debug_assert_eq!(manifest.len() as u64, manifest_len);

        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(&MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&(metadata.len() as u64).to_le_bytes());
        header.extend_from_slice(&manifest_len.to_le_bytes());
        let header_crc = crc32(&header);
        header.extend_from_slice(&header_crc.to_le_bytes());

        let mut out = Vec::with_capacity(offset as usize);
        out.extend_from_slice(&header);
        out.extend_from_slice(&metadata);
        out.extend_from_slice(&crc32(&metadata).to_le_bytes());
        out.extend_from_slice(&manifest);
        out.extend_from_slice(&crc32(&manifest).to_le_bytes());
        for (_, _, _, bytes) in &chunks {
            out.extend_from_slice(bytes);
        }
        let total = out.len() as u64;
        debug_assert_eq!(total, offset);
        storage.write(key, &out)?;
        quq_obs::add("store.bytes_written", total);
        Ok(total)
    }
}
