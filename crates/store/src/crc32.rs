//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the checksum
//! guarding every section of a QUQM artifact.
//!
//! Hand-rolled because the workspace is std-only: no `crc32fast` on the
//! shelf. The classic byte-at-a-time table method is plenty for artifact
//! sizes in the tens of megabytes, and the choice of CRC-32/IEEE keeps the
//! on-disk format checkable by any standard tool (`python3 -c
//! "import zlib; print(zlib.crc32(data))"` agrees byte-for-byte).

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32/IEEE of `bytes` (matches `zlib.crc32`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vectors() {
        // The CRC-32/IEEE check value from the catalogue of parametrised
        // CRC algorithms, plus the empty-input identity.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = b"quadruplet uniform quantization".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut d = data.clone();
                d[i] ^= 1 << bit;
                assert_ne!(crc32(&d), base, "flip at byte {i} bit {bit} undetected");
            }
        }
    }
}
