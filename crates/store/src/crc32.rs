//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the checksum
//! guarding every section of a QUQM artifact.
//!
//! Hand-rolled because the workspace is std-only: no `crc32fast` on the
//! shelf. The implementation is **slice-by-8**: eight 256-entry tables,
//! built at compile time, let the main loop fold eight input bytes per
//! iteration with eight independent table lookups — roughly 4–6× the
//! classic byte-at-a-time method. That matters now that chunk reads are
//! zero-copy: with the `memcpy` gone, the CRC pass *is* the open-to-ready
//! cost of a raw chunk. The choice of CRC-32/IEEE keeps the on-disk
//! format checkable by any standard tool (`python3 -c "import zlib;
//! print(zlib.crc32(data))"` agrees byte-for-byte), and the private
//! byte-at-a-time reference implementation stays behind `cfg(test)` so
//! the two are property-checked against each other.

/// `TABLES[0]` is the classic CRC table; `TABLES[k]` maps a byte `b` to
/// the CRC contribution of `b` followed by `k` zero bytes, which is what
/// lets eight lanes be folded independently and XOR-combined.
const fn make_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1usize;
    while t < 8 {
        let mut i = 0usize;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = make_tables();

/// CRC-32/IEEE of `bytes` (matches `zlib.crc32`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        // Fold the running CRC into the first four bytes, then look all
        // eight lanes up in their distance-matched tables.
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ c;
        c = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][chunk[4] as usize]
            ^ TABLES[2][chunk[5] as usize]
            ^ TABLES[1][chunk[6] as usize]
            ^ TABLES[0][chunk[7] as usize];
    }
    for &b in chunks.remainder() {
        c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The original byte-at-a-time implementation, kept as the reference
    /// the slice-by-8 loop must agree with.
    fn crc32_bytewise(bytes: &[u8]) -> u32 {
        let mut c = !0u32;
        for &b in bytes {
            c = TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        !c
    }

    #[test]
    fn known_answer_vectors() {
        // The CRC-32/IEEE check value from the catalogue of parametrised
        // CRC algorithms, plus the empty-input identity.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        // A longer vector exercising the 8-byte main loop: zlib.crc32 of
        // 1000 zero bytes.
        assert_eq!(crc32(&[0u8; 1000]), 0x060B_1780);
        assert_eq!(crc32_bytewise(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn slice_by_8_agrees_with_bytewise_on_random_inputs() {
        let mut rng = StdRng::seed_from_u64(97);
        // Sweep every length 0..64 (all remainder shapes), then a spread
        // of larger sizes around the 8-byte boundary.
        let mut lengths: Vec<usize> = (0..64).collect();
        lengths.extend([255, 256, 257, 1023, 1024, 4096, 65_537]);
        for len in lengths {
            let data: Vec<u8> = (0..len).map(|_| rng.gen::<u32>() as u8).collect();
            assert_eq!(crc32(&data), crc32_bytewise(&data), "length {len}");
        }
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = b"quadruplet uniform quantization".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut d = data.clone();
                d[i] ^= 1 << bit;
                assert_ne!(crc32(&d), base, "flip at byte {i} bit {bit} undetected");
            }
        }
    }
}
