//! Byte-level codec of the QUQM container (all integers little-endian).
//!
//! ```text
//! offset 0   magic        "QUQM"                      4 bytes
//! offset 4   version      u32 = 2 (v1 still readable)
//! offset 8   meta_len     u64   metadata block length (excluding its CRC)
//! offset 16  manifest_len u64   manifest block length (excluding its CRC)
//! offset 24  header_crc   u32   CRC-32 of bytes 0..24
//! offset 28  metadata     meta_len bytes, then its CRC-32 (u32)
//! …          manifest     manifest_len bytes, then its CRC-32 (u32)
//! …          chunks       concatenated *stored* chunk payloads, in
//!                         manifest order
//! ```
//!
//! The **metadata block** holds the model configuration, the PTQ preset,
//! and the fitting method name. The **manifest** is a chunk directory;
//! one v2 entry is:
//!
//! ```text
//! key         str16 (u16 length + UTF-8)
//! kind        u8
//! offset      u64   absolute file offset of the stored payload
//! stored_len  u64   bytes on disk (after the codec stack)
//! raw_len     u64   decoded payload bytes (== stored_len for raw chunks)
//! crc         u32   CRC-32 of the STORED bytes
//! n_codecs    u8    codec-stack length (0 = raw)
//! codecs      per codec: id u8, then its params
//!                   (byte-shuffle = 1, stride u8; lz = 2, no params)
//! rank        u8
//! dims        u64 × rank
//! ```
//!
//! v1 entries (still decoded via [`decode_manifest_v1`]) lack `raw_len`
//! and the codec stack: every v1 chunk is raw. Chunks tile the rest of
//! the file contiguously by their **stored** lengths, so **every byte of
//! an artifact is covered by exactly one checksum** (structural fields by
//! the header CRC, blocks by their own CRCs, stored payloads by the
//! manifest CRCs) — the invariant behind the flip-any-byte corruption
//! guarantee. Payload CRCs cover the stored bytes, so corruption is
//! caught *before* any decode runs on the data.
//!
//! Chunk payload encodings by kind:
//!
//! * `TensorF32` — raw `f32` values (bit-exact, length = 4·∏dims);
//! * `Qub` — one `QUB1` record ([`quq_core::io`]): the paper's Fig. 5
//!   sideband (two FC registers + base scale) and the packed QUB payload;
//! * `ActivationParams` / `WeightParams` — tables of fitted [`QuqParams`]
//!   keyed by operand / weight site, with every scale factor stored as its
//!   raw `f32` bits (exact reconstruction; the 8-bit FC registers alone
//!   would round scale ratios to powers of two on decode).

use crate::codec::{CodecSpec, CodecStack};
use crate::StoreError;
use quq_core::calib::{Coverage, Operand, ParamKey};
use quq_core::pipeline::PtqConfig;
use quq_core::scheme::{QuqParams, SpaceLayout};
use quq_vit::{Family, ModelConfig, ModelId, OpKind, OpSite, StageConfig};

/// Magic prefix of the artifact format.
pub const MAGIC: [u8; 4] = *b"QUQM";

/// Current format version.
pub const VERSION: u32 = 2;

/// The previous format version, still readable through the compat shim.
pub const VERSION_V1: u32 = 1;

/// Upper bound on how much a stored payload may claim to expand when
/// decoded. The LZ token format tops out at ~44× (a 3-byte match token
/// yielding 131 bytes), so any manifest declaring more than 64× is lying;
/// rejecting it at open time means a CRC-valid-but-hostile `raw_len` can
/// never drive decode toward an attacker-sized output. The range coder
/// could legitimately exceed this on degenerate (near-constant) data, so
/// the writer refuses to pick any encoding past the cap — weight chunks
/// sit nowhere near it in practice.
pub const MAX_DECODE_EXPANSION: u64 = 64;

/// Fixed header size (through `header_crc`).
pub const HEADER_LEN: u64 = 28;

/// Manifest key of the activation-quantizer table chunk.
pub const ACTIVATION_PARAMS_KEY: &str = "params/activations";

/// Manifest key of the weight-quantizer table chunk.
pub const WEIGHT_PARAMS_KEY: &str = "params/weights";

/// What a chunk's payload decodes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkKind {
    /// Raw `f32` tensor data.
    TensorF32,
    /// One `QUB1` record (quantized weight + FC sideband).
    Qub,
    /// Table of fitted activation quantizers.
    ActivationParams,
    /// Table of fitted weight quantizers.
    WeightParams,
}

impl ChunkKind {
    fn code(self) -> u8 {
        match self {
            ChunkKind::TensorF32 => 0,
            ChunkKind::Qub => 1,
            ChunkKind::ActivationParams => 2,
            ChunkKind::WeightParams => 3,
        }
    }

    fn from_code(c: u8) -> Result<Self, StoreError> {
        match c {
            0 => Ok(ChunkKind::TensorF32),
            1 => Ok(ChunkKind::Qub),
            2 => Ok(ChunkKind::ActivationParams),
            3 => Ok(ChunkKind::WeightParams),
            other => Err(StoreError::Format(format!("unknown chunk kind {other}"))),
        }
    }
}

/// One manifest entry: where a chunk lives, how it is stored, and how to
/// verify it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkInfo {
    /// Site key, e.g. `model/s0/b1/qkv_w` or `qub/block1.Qkv`.
    pub key: String,
    /// Payload encoding.
    pub kind: ChunkKind,
    /// Absolute file offset of the stored payload.
    pub offset: u64,
    /// Stored (on-disk, post-codec) payload length in bytes.
    pub length: u64,
    /// Decoded payload length in bytes (== `length` for raw chunks).
    pub raw_length: u64,
    /// CRC-32 of the **stored** payload bytes.
    pub crc: u32,
    /// Codec stack the stored bytes went through (empty = raw).
    pub stack: CodecStack,
    /// Logical tensor shape (empty for params tables).
    pub shape: Vec<usize>,
}

impl ChunkInfo {
    /// Structural invariants every manifest entry must satisfy before its
    /// chunk is ever decoded: a valid codec stack, raw chunks storing
    /// exactly their decoded length, and compressed chunks bounded by the
    /// [`MAX_DECODE_EXPANSION`] expansion cap.
    pub fn validate_stack(&self) -> Result<(), StoreError> {
        self.stack.validate()?;
        if self.stack.is_raw() {
            if self.length != self.raw_length {
                return Err(StoreError::Format(format!(
                    "raw chunk {:?} stores {} bytes but declares {} decoded",
                    self.key, self.length, self.raw_length
                )));
            }
        } else if self.raw_length > self.length.saturating_mul(MAX_DECODE_EXPANSION) {
            return Err(StoreError::Format(format!(
                "chunk {:?} claims {} bytes from {} stored — past the {MAX_DECODE_EXPANSION}× \
                 decode-expansion cap",
                self.key, self.raw_length, self.length
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Primitive little-endian encode/decode helpers.
// ---------------------------------------------------------------------------

/// Growable little-endian encoder.
#[derive(Default)]
pub(crate) struct Enc(pub Vec<u8>);

impl Enc {
    pub fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    pub fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn i64(&mut self, v: i64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn f32(&mut self, v: f32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    pub fn str16(&mut self, s: &str) {
        debug_assert!(s.len() <= u16::MAX as usize);
        self.u16(s.len() as u16);
        self.0.extend_from_slice(s.as_bytes());
    }
}

/// Bounded little-endian decoder over an in-memory block; every read is
/// checked so truncated or corrupt blocks error instead of panicking.
pub(crate) struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub fn is_done(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| {
                StoreError::Format(format!(
                    "truncated block: wanted {n} bytes at offset {}",
                    self.pos
                ))
            })?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }
    pub fn u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("sized")))
    }
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("sized")))
    }
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("sized")))
    }
    pub fn i64(&mut self) -> Result<i64, StoreError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("sized")))
    }
    pub fn f32(&mut self) -> Result<f32, StoreError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().expect("sized")))
    }
    pub fn str16(&mut self) -> Result<String, StoreError> {
        let n = self.u16()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| StoreError::Format("non-UTF-8 string".into()))
    }
}

// ---------------------------------------------------------------------------
// Enum codes.
// ---------------------------------------------------------------------------

const MODEL_IDS: [ModelId; 7] = [
    ModelId::VitS,
    ModelId::VitL,
    ModelId::DeitS,
    ModelId::DeitB,
    ModelId::SwinT,
    ModelId::SwinS,
    ModelId::Test,
];

const FAMILIES: [Family; 3] = [Family::Vit, Family::Deit, Family::Swin];

/// Every [`OpKind`], in its stable wire order (the declaration order in
/// `quq_vit::backend`); the wire code of a kind is its index here.
pub const OP_KINDS: [OpKind; 16] = [
    OpKind::PatchEmbed,
    OpKind::Norm1,
    OpKind::Qkv,
    OpKind::QkMatmul,
    OpKind::Softmax,
    OpKind::PvMatmul,
    OpKind::AttnProj,
    OpKind::Residual1,
    OpKind::Norm2,
    OpKind::Fc1,
    OpKind::Gelu,
    OpKind::Fc2,
    OpKind::Residual2,
    OpKind::PatchMerge,
    OpKind::FinalNorm,
    OpKind::Head,
];

fn enum_code<T: PartialEq + Copy>(table: &[T], v: T, what: &str) -> u8 {
    table
        .iter()
        .position(|&t| t == v)
        .unwrap_or_else(|| panic!("{what} missing from wire table")) as u8
}

fn enum_from_code<T: Copy>(table: &[T], c: u8, what: &str) -> Result<T, StoreError> {
    table
        .get(c as usize)
        .copied()
        .ok_or_else(|| StoreError::Format(format!("unknown {what} code {c}")))
}

fn op_kind_from_name(name: &str) -> Option<OpKind> {
    OP_KINDS.iter().copied().find(|k| k.as_str() == name)
}

// ---------------------------------------------------------------------------
// Site keys.
// ---------------------------------------------------------------------------

/// Manifest key of the quantized-weight chunk for `site`.
pub fn qub_key(site: OpSite) -> String {
    format!("qub/{site}")
}

/// Inverse of [`qub_key`]: `qub/block3.Qkv` → the site, `None` for keys
/// that are not quantized-weight chunks.
pub fn site_from_qub_key(key: &str) -> Option<OpSite> {
    let rest = key.strip_prefix("qub/")?;
    match rest.strip_prefix("block") {
        Some(tail) => {
            let (num, kind) = tail.split_once('.')?;
            Some(OpSite::in_block(
                num.parse().ok()?,
                op_kind_from_name(kind)?,
            ))
        }
        None => Some(OpSite::global(op_kind_from_name(rest)?)),
    }
}

// ---------------------------------------------------------------------------
// Metadata block: model config + PTQ preset + method name.
// ---------------------------------------------------------------------------

/// Serializes the metadata block (without its CRC).
pub fn encode_metadata(config: &ModelConfig, ptq: PtqConfig, method: &str) -> Vec<u8> {
    let mut e = Enc::default();
    e.u8(enum_code(&MODEL_IDS, config.id, "ModelId"));
    e.u8(enum_code(&FAMILIES, config.family, "Family"));
    e.u64(config.img_size as u64);
    e.u64(config.in_chans as u64);
    e.u64(config.patch_size as u64);
    e.u64(config.mlp_ratio as u64);
    e.u64(config.window.map_or(0, |w| w as u64));
    e.u64(config.num_classes as u64);
    e.u32(config.stages.len() as u32);
    for s in &config.stages {
        e.u64(s.depth as u64);
        e.u64(s.embed_dim as u64);
        e.u64(s.num_heads as u64);
    }
    e.u8(ptq.bits_w as u8);
    e.u8(ptq.bits_a as u8);
    e.u8(match ptq.coverage {
        Coverage::Partial => 0,
        Coverage::Full => 1,
    });
    e.str16(method);
    e.0
}

/// Parses the metadata block.
pub fn decode_metadata(bytes: &[u8]) -> Result<(ModelConfig, PtqConfig, String), StoreError> {
    let mut d = Dec::new(bytes);
    let id = enum_from_code(&MODEL_IDS, d.u8()?, "ModelId")?;
    let family = enum_from_code(&FAMILIES, d.u8()?, "Family")?;
    let img_size = d.u64()? as usize;
    let in_chans = d.u64()? as usize;
    let patch_size = d.u64()? as usize;
    let mlp_ratio = d.u64()? as usize;
    let window = match d.u64()? {
        0 => None,
        w => Some(w as usize),
    };
    let num_classes = d.u64()? as usize;
    let n_stages = d.u32()? as usize;
    if n_stages == 0 || n_stages > 64 {
        return Err(StoreError::Format(format!(
            "implausible stage count {n_stages}"
        )));
    }
    let mut stages = Vec::with_capacity(n_stages);
    for _ in 0..n_stages {
        stages.push(StageConfig {
            depth: d.u64()? as usize,
            embed_dim: d.u64()? as usize,
            num_heads: d.u64()? as usize,
        });
    }
    let config = ModelConfig {
        id,
        family,
        img_size,
        in_chans,
        patch_size,
        stages,
        mlp_ratio,
        window,
        num_classes,
    };
    let bits_w = u32::from(d.u8()?);
    let bits_a = u32::from(d.u8()?);
    let coverage = match d.u8()? {
        0 => Coverage::Partial,
        1 => Coverage::Full,
        other => return Err(StoreError::Format(format!("unknown coverage code {other}"))),
    };
    let method = d.str16()?;
    if !d.is_done() {
        return Err(StoreError::Format("trailing bytes in metadata".into()));
    }
    Ok((
        config,
        PtqConfig {
            bits_w,
            bits_a,
            coverage,
        },
        method,
    ))
}

// ---------------------------------------------------------------------------
// Manifest.
// ---------------------------------------------------------------------------

fn encode_stack(e: &mut Enc, stack: &CodecStack) {
    e.u8(stack.0.len() as u8);
    for spec in &stack.0 {
        e.u8(spec.id());
        if let CodecSpec::ByteShuffle { stride } = spec {
            e.u8(*stride);
        }
    }
}

fn decode_stack(d: &mut Dec<'_>) -> Result<CodecStack, StoreError> {
    let n = d.u8()? as usize;
    if n > crate::codec::MAX_STACK_LEN {
        return Err(StoreError::Format(format!(
            "codec stack of {n} exceeds the {}-codec cap",
            crate::codec::MAX_STACK_LEN
        )));
    }
    let mut specs = Vec::with_capacity(n);
    for _ in 0..n {
        specs.push(match d.u8()? {
            1 => CodecSpec::ByteShuffle { stride: d.u8()? },
            2 => CodecSpec::Lz,
            3 => CodecSpec::Rc,
            other => return Err(StoreError::Format(format!("unknown codec id {other}"))),
        });
    }
    Ok(CodecStack(specs))
}

/// Serializes the v2 manifest block (without its CRC).
pub fn encode_manifest(entries: &[ChunkInfo]) -> Vec<u8> {
    let mut e = Enc::default();
    e.u32(entries.len() as u32);
    for c in entries {
        e.str16(&c.key);
        e.u8(c.kind.code());
        e.u64(c.offset);
        e.u64(c.length);
        e.u64(c.raw_length);
        e.u32(c.crc);
        encode_stack(&mut e, &c.stack);
        e.u8(c.shape.len() as u8);
        for &dim in &c.shape {
            e.u64(dim as u64);
        }
    }
    e.0
}

/// Serializes a manifest in the v1 layout (no `raw_len`, no codec stack).
/// Every entry must be raw — v1 has no way to say otherwise.
pub fn encode_manifest_v1(entries: &[ChunkInfo]) -> Result<Vec<u8>, StoreError> {
    let mut e = Enc::default();
    e.u32(entries.len() as u32);
    for c in entries {
        if !c.stack.is_raw() || c.length != c.raw_length {
            return Err(StoreError::Unsupported(format!(
                "chunk {:?} uses a codec stack; v1 manifests are raw-only",
                c.key
            )));
        }
        e.str16(&c.key);
        e.u8(c.kind.code());
        e.u64(c.offset);
        e.u64(c.length);
        e.u32(c.crc);
        e.u8(c.shape.len() as u8);
        for &dim in &c.shape {
            e.u64(dim as u64);
        }
    }
    Ok(e.0)
}

fn decode_shape(d: &mut Dec<'_>, key: &str) -> Result<Vec<usize>, StoreError> {
    let rank = d.u8()? as usize;
    if rank > 8 {
        return Err(StoreError::Format(format!(
            "implausible rank {rank} for chunk {key:?}"
        )));
    }
    let mut shape = Vec::with_capacity(rank);
    for _ in 0..rank {
        shape.push(d.u64()? as usize);
    }
    Ok(shape)
}

/// Parses the v2 manifest block.
pub fn decode_manifest(bytes: &[u8]) -> Result<Vec<ChunkInfo>, StoreError> {
    let mut d = Dec::new(bytes);
    let count = d.u32()? as usize;
    let mut out = Vec::new();
    for _ in 0..count {
        let key = d.str16()?;
        let kind = ChunkKind::from_code(d.u8()?)?;
        let offset = d.u64()?;
        let length = d.u64()?;
        let raw_length = d.u64()?;
        let crc = d.u32()?;
        let stack = decode_stack(&mut d)?;
        let shape = decode_shape(&mut d, &key)?;
        let info = ChunkInfo {
            key,
            kind,
            offset,
            length,
            raw_length,
            crc,
            stack,
            shape,
        };
        info.validate_stack()?;
        out.push(info);
    }
    if !d.is_done() {
        return Err(StoreError::Format("trailing bytes in manifest".into()));
    }
    Ok(out)
}

/// Parses a v1 manifest block (the compat shim): entries come back with
/// an empty codec stack and `raw_length == length`.
pub fn decode_manifest_v1(bytes: &[u8]) -> Result<Vec<ChunkInfo>, StoreError> {
    let mut d = Dec::new(bytes);
    let count = d.u32()? as usize;
    let mut out = Vec::new();
    for _ in 0..count {
        let key = d.str16()?;
        let kind = ChunkKind::from_code(d.u8()?)?;
        let offset = d.u64()?;
        let length = d.u64()?;
        let crc = d.u32()?;
        let shape = decode_shape(&mut d, &key)?;
        out.push(ChunkInfo {
            key,
            kind,
            offset,
            length,
            raw_length: length,
            crc,
            stack: CodecStack::raw(),
            shape,
        });
    }
    if !d.is_done() {
        return Err(StoreError::Format("trailing bytes in manifest".into()));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Quantizer-parameter tables.
// ---------------------------------------------------------------------------

fn encode_space(e: &mut Enc, s: SpaceLayout) {
    match s {
        SpaceLayout::Split { neg, pos } => {
            e.u8(0);
            e.f32(neg);
            e.f32(pos);
        }
        SpaceLayout::MergedNeg { delta } => {
            e.u8(1);
            e.f32(delta);
        }
        SpaceLayout::MergedPos { delta } => {
            e.u8(2);
            e.f32(delta);
        }
    }
}

fn decode_space(d: &mut Dec<'_>) -> Result<SpaceLayout, StoreError> {
    match d.u8()? {
        0 => Ok(SpaceLayout::Split {
            neg: d.f32()?,
            pos: d.f32()?,
        }),
        1 => Ok(SpaceLayout::MergedNeg { delta: d.f32()? }),
        2 => Ok(SpaceLayout::MergedPos { delta: d.f32()? }),
        other => Err(StoreError::Format(format!(
            "unknown space-layout tag {other}"
        ))),
    }
}

fn encode_params(e: &mut Enc, p: &QuqParams) {
    e.u8(p.bits() as u8);
    encode_space(e, p.fine());
    encode_space(e, p.coarse());
}

fn decode_params(d: &mut Dec<'_>) -> Result<QuqParams, StoreError> {
    let bits = u32::from(d.u8()?);
    let fine = decode_space(d)?;
    let coarse = decode_space(d)?;
    QuqParams::new(bits, fine, coarse)
        .map_err(|e| StoreError::Format(format!("invalid quantizer parameters: {e}")))
}

fn encode_site(e: &mut Enc, site: OpSite) {
    e.i64(site.block.map_or(-1, |b| b as i64));
    e.u8(enum_code(&OP_KINDS, site.kind, "OpKind"));
}

fn decode_site(d: &mut Dec<'_>) -> Result<OpSite, StoreError> {
    let block = match d.i64()? {
        -1 => None,
        b if b >= 0 => Some(b as usize),
        b => return Err(StoreError::Format(format!("invalid block index {b}"))),
    };
    let kind = enum_from_code(&OP_KINDS, d.u8()?, "OpKind")?;
    Ok(OpSite { block, kind })
}

/// Serializes the activation-quantizer table chunk payload.
pub fn encode_activation_params(entries: &[(ParamKey, QuqParams)]) -> Vec<u8> {
    let mut e = Enc::default();
    e.u32(entries.len() as u32);
    for (key, p) in entries {
        encode_site(&mut e, key.site);
        e.u8(match key.operand {
            Operand::Input => 0,
            Operand::InputB => 1,
        });
        encode_params(&mut e, p);
    }
    e.0
}

/// Parses the activation-quantizer table chunk payload.
pub fn decode_activation_params(bytes: &[u8]) -> Result<Vec<(ParamKey, QuqParams)>, StoreError> {
    let mut d = Dec::new(bytes);
    let count = d.u32()? as usize;
    let mut out = Vec::new();
    for _ in 0..count {
        let site = decode_site(&mut d)?;
        let operand = match d.u8()? {
            0 => Operand::Input,
            1 => Operand::InputB,
            other => return Err(StoreError::Format(format!("unknown operand code {other}"))),
        };
        out.push((ParamKey { site, operand }, decode_params(&mut d)?));
    }
    if !d.is_done() {
        return Err(StoreError::Format(
            "trailing bytes in activation-params table".into(),
        ));
    }
    Ok(out)
}

/// Serializes the weight-quantizer table chunk payload.
pub fn encode_weight_params(entries: &[(OpSite, QuqParams)]) -> Vec<u8> {
    let mut e = Enc::default();
    e.u32(entries.len() as u32);
    for (site, p) in entries {
        encode_site(&mut e, *site);
        encode_params(&mut e, p);
    }
    e.0
}

/// Parses the weight-quantizer table chunk payload.
pub fn decode_weight_params(bytes: &[u8]) -> Result<Vec<(OpSite, QuqParams)>, StoreError> {
    let mut d = Dec::new(bytes);
    let count = d.u32()? as usize;
    let mut out = Vec::new();
    for _ in 0..count {
        let site = decode_site(&mut d)?;
        out.push((site, decode_params(&mut d)?));
    }
    if !d.is_done() {
        return Err(StoreError::Format(
            "trailing bytes in weight-params table".into(),
        ));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Model tensor keys.
// ---------------------------------------------------------------------------

/// The per-block tensor names, in wire order, paired with accessors.
pub(crate) const BLOCK_TENSORS: [&str; 12] = [
    "ln1_g", "ln1_b", "qkv_w", "qkv_b", "proj_w", "proj_b", "ln2_g", "ln2_b", "fc1_w", "fc1_b",
    "fc2_w", "fc2_b",
];

/// Enumerates every model-tensor key for `config`, in the canonical wire
/// order. The writer emits chunks in this order; the reader requests them
/// by the same names.
pub fn model_tensor_keys(config: &ModelConfig) -> Vec<String> {
    let mut keys = vec!["model/patch_w".to_string(), "model/patch_b".to_string()];
    if matches!(config.family, Family::Vit | Family::Deit) {
        keys.push("model/cls_token".to_string());
    }
    keys.push("model/pos_embed".to_string());
    for (si, stage) in config.stages.iter().enumerate() {
        for bi in 0..stage.depth {
            for name in BLOCK_TENSORS {
                keys.push(format!("model/s{si}/b{bi}/{name}"));
            }
        }
        if si + 1 < config.stages.len() {
            keys.push(format!("model/s{si}/merge_w"));
            keys.push(format!("model/s{si}/merge_b"));
        }
    }
    keys.extend(
        ["final_g", "final_b", "head_w", "head_b"]
            .iter()
            .map(|n| format!("model/{n}")),
    );
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metadata_roundtrips_for_every_paper_model() {
        for id in ModelId::PAPER_MODELS {
            for cfg in [ModelConfig::full_scale(id), ModelConfig::eval_scale(id)] {
                let bytes = encode_metadata(&cfg, PtqConfig::full_w8a8(), "QUQ");
                let (back, ptq, method) = decode_metadata(&bytes).unwrap();
                assert_eq!(back, cfg);
                assert_eq!(ptq, PtqConfig::full_w8a8());
                assert_eq!(method, "QUQ");
            }
        }
    }

    #[test]
    fn qub_keys_roundtrip_for_every_site_shape() {
        for kind in OP_KINDS {
            for site in [OpSite::global(kind), OpSite::in_block(7, kind)] {
                assert_eq!(site_from_qub_key(&qub_key(site)), Some(site));
            }
        }
        assert_eq!(site_from_qub_key("model/patch_w"), None);
        assert_eq!(site_from_qub_key("qub/block9.Nope"), None);
    }

    #[test]
    fn params_tables_roundtrip() {
        let p1 = QuqParams::new(
            8,
            SpaceLayout::Split {
                neg: 0.01,
                pos: 0.02,
            },
            SpaceLayout::Split {
                neg: 0.16,
                pos: 0.16,
            },
        )
        .unwrap();
        let p2 = QuqParams::uniform(6, 0.125).unwrap();
        let acts = vec![
            (ParamKey::input(OpSite::global(OpKind::Head)), p1),
            (
                ParamKey {
                    site: OpSite::in_block(3, OpKind::QkMatmul),
                    operand: Operand::InputB,
                },
                p2,
            ),
        ];
        let back = decode_activation_params(&encode_activation_params(&acts)).unwrap();
        assert_eq!(back, acts);
        let ws = vec![
            (OpSite::in_block(0, OpKind::Fc1), p2),
            (OpSite::global(OpKind::PatchEmbed), p1),
        ];
        assert_eq!(
            decode_weight_params(&encode_weight_params(&ws)).unwrap(),
            ws
        );
    }

    #[test]
    fn model_tensor_keys_cover_swin_merges_and_skip_cls() {
        let cfg = ModelConfig::test_swin_config();
        let keys = model_tensor_keys(&cfg);
        assert!(keys.contains(&"model/s0/merge_w".to_string()));
        assert!(!keys.iter().any(|k| k.contains("cls_token")));
        let vit = ModelConfig::test_config();
        assert!(model_tensor_keys(&vit).contains(&"model/cls_token".to_string()));
    }

    #[test]
    fn manifest_roundtrips() {
        let entries = vec![
            ChunkInfo {
                key: "model/patch_w".into(),
                kind: ChunkKind::TensorF32,
                offset: 1234,
                length: 3000,
                raw_length: 4096,
                crc: 0xDEAD_BEEF,
                stack: CodecStack::shuffle_lz(4),
                shape: vec![32, 48],
            },
            ChunkInfo {
                key: ACTIVATION_PARAMS_KEY.into(),
                kind: ChunkKind::ActivationParams,
                offset: 5330,
                length: 99,
                raw_length: 99,
                crc: 7,
                stack: CodecStack::raw(),
                shape: vec![],
            },
        ];
        assert_eq!(
            decode_manifest(&encode_manifest(&entries)).unwrap(),
            entries
        );
    }

    #[test]
    fn v1_manifests_decode_as_raw_stacks() {
        let entries = vec![ChunkInfo {
            key: "model/patch_w".into(),
            kind: ChunkKind::TensorF32,
            offset: 1234,
            length: 4096,
            raw_length: 4096,
            crc: 0xDEAD_BEEF,
            stack: CodecStack::raw(),
            shape: vec![32, 48],
        }];
        let v1 = encode_manifest_v1(&entries).unwrap();
        assert_eq!(decode_manifest_v1(&v1).unwrap(), entries);

        // v1 cannot describe a compressed chunk.
        let compressed = vec![ChunkInfo {
            stack: CodecStack::lz(),
            length: 100,
            raw_length: 4096,
            ..entries[0].clone()
        }];
        assert!(matches!(
            encode_manifest_v1(&compressed),
            Err(StoreError::Unsupported(_))
        ));
    }

    #[test]
    fn hostile_manifest_stacks_are_rejected_at_decode() {
        let base = ChunkInfo {
            key: "model/patch_w".into(),
            kind: ChunkKind::TensorF32,
            offset: 0,
            length: 10,
            raw_length: 10,
            crc: 0,
            stack: CodecStack::raw(),
            shape: vec![],
        };
        // A raw entry lying about its decoded length.
        let lying_raw = ChunkInfo {
            raw_length: 11,
            ..base.clone()
        };
        assert!(matches!(
            decode_manifest(&encode_manifest(&[lying_raw])),
            Err(StoreError::Format(_))
        ));
        // A compressed entry claiming an absurd expansion.
        let ballooning = ChunkInfo {
            stack: CodecStack::lz(),
            raw_length: 10 * MAX_DECODE_EXPANSION + 1,
            ..base.clone()
        };
        assert!(matches!(
            decode_manifest(&encode_manifest(&[ballooning])),
            Err(StoreError::Format(_))
        ));
        // An Lz anywhere but last in the stack.
        let misordered = ChunkInfo {
            stack: CodecStack(vec![CodecSpec::Lz, CodecSpec::ByteShuffle { stride: 4 }]),
            raw_length: 40,
            ..base
        };
        assert!(matches!(
            decode_manifest(&encode_manifest(&[misordered])),
            Err(StoreError::Format(_))
        ));
    }
}
