//! The per-chunk codec pipeline of QUQM v2 artifacts.
//!
//! Each chunk declares a **codec stack** in the manifest — an ordered list
//! of transforms applied to the raw payload at write time and undone, in
//! reverse, at read time (the same chain-of-declared-codecs shape zarrs
//! gives its arrays). The stack is data, not convention: a v2 reader
//! decodes whatever the manifest declares, and an empty stack means the
//! payload is stored raw.
//!
//! Three std-only codecs fit this workload:
//!
//! * [`ByteShuffle`] — transposes the byte lanes of fixed-stride records
//!   (stride 4 for `f32` tensors), so the sign/exponent bytes of every
//!   value land next to each other. Weight tensors have tightly clustered
//!   exponents, concentrating all of the compressible structure into one
//!   quarter of the stream. Size-preserving, trivially invertible.
//! * [`Lz`] — an LZ77-style match/literal compressor with a 64 KiB window
//!   and overlapping copies (distance 1 = classic RLE). No entropy stage:
//!   decode is a bounds-checked copy loop. Wins on repetitive payloads
//!   (constant runs, structural tables).
//! * [`Rc`] — an adaptive binary range coder over a per-byte bit tree
//!   (the LZMA literal-coder shape). Gaussian-ish weight data has almost
//!   no exact repeats for LZ to match — its redundancy is the *skewed
//!   distribution* of the shuffled exponent lane (measured ≈2.7 bits/byte
//!   against 8), which only entropy coding can collect. `byte-shuffle →
//!   rc` is what gets f32 tensor chunks past the 15% size-reduction gate;
//!   the adaptive model re-learns each lane as the stream crosses into
//!   it, so near-random mantissa lanes cost ≈0.2% overhead instead of
//!   needing per-lane framing.
//!
//! The writer does not guess: it measures every chunk under each candidate
//! stack and **keeps raw unless compression wins at least 2%**
//! ([`MIN_SAVINGS_PERMILLE`]) — QUB chunks are already near-entropy-packed
//! and stay raw; the f32 tensor/table chunks compress well. The decision
//! is recorded per chunk (the manifest stack *is* the record) and
//! surfaces in `storebench --codec` reports.
//!
//! Decode is hardened like every other load path: hostile or corrupt
//! streams yield a structured [`StoreError::Format`], output is grown
//! incrementally and hard-capped at the declared decoded length, and only
//! the last codec of a stack may change the payload length
//! ([`CodecStack::validate`]), so every intermediate decode step knows its
//! exact expected size.

use crate::StoreError;

/// Minimum savings, in permille of the raw size, a compressed encoding
/// must achieve before the writer prefers it over raw storage.
pub const MIN_SAVINGS_PERMILLE: u64 = 20;

/// Longest codec stack a manifest may declare.
pub const MAX_STACK_LEN: usize = 4;

/// Shortest match the LZ encoder emits (also the hash width).
const MIN_MATCH: usize = 4;

/// Longest match one LZ token can carry: `MIN_MATCH + 0x7F`.
const MAX_MATCH: usize = MIN_MATCH + 0x7F;

/// Longest literal run one LZ token can carry.
const MAX_LITERAL: usize = 0x80;

/// LZ match window (distances are u16, 0 is invalid).
const MAX_DISTANCE: usize = u16::MAX as usize;

/// One byte-slice transform: encode on save, decode (exact inverse) on
/// load. Implementations declare a stable wire id and parameter bytes so
/// the manifest can reconstruct them.
pub trait Codec: Send + Sync {
    /// Stable wire id of this codec.
    fn id(&self) -> u8;

    /// Human-readable name (for reports and errors).
    fn name(&self) -> &'static str;

    /// Whether `encode` always preserves the payload length. Stacks may
    /// only change length in their final codec, so every decode step
    /// knows its expected output size.
    fn size_preserving(&self) -> bool;

    /// Transforms `input` into its stored form. Infallible: every byte
    /// slice has an encoding.
    fn encode(&self, input: &[u8]) -> Vec<u8>;

    /// Inverts [`Codec::encode`], producing exactly `raw_len` bytes.
    ///
    /// # Errors
    ///
    /// [`StoreError::Format`] when `input` is not a valid encoding of any
    /// `raw_len`-byte payload (truncated stream, out-of-window match,
    /// wrong decoded length). Never panics, never allocates more than the
    /// actually-decoded bytes.
    fn decode(&self, input: &[u8], raw_len: usize) -> Result<Vec<u8>, StoreError>;
}

/// The identity codec. Stacks never contain it (an empty stack already
/// means raw); it exists so the trait's contract can be exercised and as
/// the degenerate reference the others are tested against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Raw;

impl Codec for Raw {
    fn id(&self) -> u8 {
        0
    }
    fn name(&self) -> &'static str {
        "raw"
    }
    fn size_preserving(&self) -> bool {
        true
    }
    fn encode(&self, input: &[u8]) -> Vec<u8> {
        input.to_vec()
    }
    fn decode(&self, input: &[u8], raw_len: usize) -> Result<Vec<u8>, StoreError> {
        if input.len() != raw_len {
            return Err(StoreError::Format(format!(
                "raw codec: {} stored bytes but {raw_len} expected",
                input.len()
            )));
        }
        Ok(input.to_vec())
    }
}

/// Byte-lane transpose over fixed-stride records: all first bytes, then
/// all second bytes, … A tail shorter than one record is appended
/// untransposed. With stride 4 over `f32` data the fourth lane holds every
/// value's sign + high exponent bits — near-constant for weight tensors —
/// and the third lane its low exponent bit + mantissa top.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByteShuffle {
    /// Record width in bytes (4 for `f32`). Must be ≥ 2; a stride of 1
    /// would be the identity.
    pub stride: u8,
}

impl Codec for ByteShuffle {
    fn id(&self) -> u8 {
        1
    }
    fn name(&self) -> &'static str {
        "byte-shuffle"
    }
    fn size_preserving(&self) -> bool {
        true
    }
    fn encode(&self, input: &[u8]) -> Vec<u8> {
        let s = self.stride.max(1) as usize;
        let records = input.len() / s;
        let body = records * s;
        let mut out = Vec::with_capacity(input.len());
        for lane in 0..s {
            for rec in 0..records {
                out.push(input[rec * s + lane]);
            }
        }
        out.extend_from_slice(&input[body..]);
        out
    }
    fn decode(&self, input: &[u8], raw_len: usize) -> Result<Vec<u8>, StoreError> {
        if input.len() != raw_len {
            return Err(StoreError::Format(format!(
                "byte-shuffle: {} stored bytes but {raw_len} expected",
                input.len()
            )));
        }
        let s = self.stride.max(1) as usize;
        let records = input.len() / s;
        let body = records * s;
        let mut out = vec![0u8; input.len()];
        for lane in 0..s {
            for rec in 0..records {
                out[rec * s + lane] = input[lane * records + rec];
            }
        }
        out[body..].copy_from_slice(&input[body..]);
        Ok(out)
    }
}

/// LZ77-style match/literal compressor, RLE included as the distance-1
/// special case.
///
/// Token stream (byte-exact, documented in DESIGN.md §12):
///
/// ```text
/// token := ctrl < 0x80 : literal run, (ctrl + 1) raw bytes follow (1..=128)
///        | ctrl ≥ 0x80 : match, length = (ctrl & 0x7F) + 4 (4..=131),
///                        then distance u16 LE (1..=65535); copy from the
///                        already-decoded output, overlap allowed
/// ```
///
/// The encoder is a greedy single-pass hash matcher over 4-byte seeds; the
/// decoder is a strict validator (distance must be non-zero and within the
/// decoded prefix, output must land exactly on `raw_len`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lz;

impl Lz {
    fn hash(window: &[u8]) -> usize {
        // Fibonacci hash of the 4-byte seed into a 16-bit table.
        let seed = u32::from_le_bytes(window[..4].try_into().expect("sized"));
        (seed.wrapping_mul(0x9E37_79B9) >> 16) as usize
    }
}

impl Codec for Lz {
    fn id(&self) -> u8 {
        2
    }
    fn name(&self) -> &'static str {
        "lz"
    }
    fn size_preserving(&self) -> bool {
        false
    }
    fn encode(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(input.len() / 2 + 16);
        // Last position each 4-byte-seed hash was seen at (+1; 0 = never).
        let mut table = vec![0u32; 1 << 16];
        let mut lit_start = 0usize;
        let mut i = 0usize;

        let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize, input: &[u8]| {
            let mut at = from;
            while at < to {
                let n = (to - at).min(MAX_LITERAL);
                out.push((n - 1) as u8);
                out.extend_from_slice(&input[at..at + n]);
                at += n;
            }
        };

        while i + MIN_MATCH <= input.len() {
            let h = Self::hash(&input[i..]);
            let candidate = table[h] as usize;
            table[h] = (i + 1) as u32;
            let mut matched = 0usize;
            if candidate > 0 {
                let cand = candidate - 1;
                let dist = i - cand;
                if (1..=MAX_DISTANCE).contains(&dist) {
                    let limit = (input.len() - i).min(MAX_MATCH);
                    while matched < limit && input[cand + matched] == input[i + matched] {
                        matched += 1;
                    }
                }
            }
            if matched >= MIN_MATCH {
                flush_literals(&mut out, lit_start, i, input);
                let dist = i - (candidate - 1);
                out.push(0x80 | (matched - MIN_MATCH) as u8);
                out.extend_from_slice(&(dist as u16).to_le_bytes());
                // Seed the table inside the match so adjacent repeats of
                // the same pattern keep finding nearby sources.
                let stop = (i + matched).min(input.len().saturating_sub(MIN_MATCH - 1));
                let mut j = i + 1;
                while j < stop {
                    table[Self::hash(&input[j..])] = (j + 1) as u32;
                    j += 1;
                }
                i += matched;
                lit_start = i;
            } else {
                i += 1;
            }
        }
        flush_literals(&mut out, lit_start, input.len(), input);
        out
    }
    fn decode(&self, input: &[u8], raw_len: usize) -> Result<Vec<u8>, StoreError> {
        // Grow incrementally instead of trusting `raw_len` with one big
        // allocation: a hostile manifest can declare any decoded length,
        // but memory only grows with bytes the stream actually produces.
        let mut out = Vec::with_capacity(raw_len.min(1 << 16));
        let mut pos = 0usize;
        let bad = |m: String| StoreError::Format(format!("lz stream: {m}"));
        while pos < input.len() {
            let ctrl = input[pos];
            pos += 1;
            if ctrl < 0x80 {
                let n = ctrl as usize + 1;
                let lit = input
                    .get(pos..pos + n)
                    .ok_or_else(|| bad(format!("truncated literal run of {n} at {pos}")))?;
                if out.len() + n > raw_len {
                    return Err(bad(format!(
                        "output exceeds the declared {raw_len} decoded bytes"
                    )));
                }
                out.extend_from_slice(lit);
                pos += n;
            } else {
                let len = (ctrl & 0x7F) as usize + MIN_MATCH;
                let d = input
                    .get(pos..pos + 2)
                    .ok_or_else(|| bad(format!("truncated match distance at {pos}")))?;
                pos += 2;
                let dist = u16::from_le_bytes(d.try_into().expect("sized")) as usize;
                if dist == 0 || dist > out.len() {
                    return Err(bad(format!(
                        "match distance {dist} outside the {}-byte decoded prefix",
                        out.len()
                    )));
                }
                if out.len() + len > raw_len {
                    return Err(bad(format!(
                        "output exceeds the declared {raw_len} decoded bytes"
                    )));
                }
                // Byte-at-a-time so overlapping (RLE-style) copies work.
                let start = out.len() - dist;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
        if out.len() != raw_len {
            return Err(bad(format!(
                "decoded {} bytes but the manifest declares {raw_len}",
                out.len()
            )));
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Adaptive binary range coder.
// ---------------------------------------------------------------------------

/// Probability precision of the range coder: probabilities live in
/// `0..=4096`, with `2048` = even odds.
const RC_PROB_BITS: u32 = 12;

/// Adaptation rate: each update moves the probability 1/32 of the way
/// toward the observed bit.
const RC_MOVE_BITS: u32 = 5;

/// Renormalization threshold: the range is kept ≥ 2²⁴ so the top byte of
/// `low` is settled and can be emitted.
const RC_TOP: u32 = 1 << 24;

/// Carry-less LZMA-style range encoder (`low`/`cache` carry propagation).
struct RcEncoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: Vec<u8>,
}

impl RcEncoder {
    fn new() -> RcEncoder {
        RcEncoder {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            out: Vec::new(),
        }
    }

    fn shift_low(&mut self) {
        if (self.low as u32) < 0xFF00_0000 || (self.low >> 32) != 0 {
            let carry = (self.low >> 32) as u8;
            let mut byte = self.cache;
            loop {
                self.out.push(byte.wrapping_add(carry));
                byte = 0xFF;
                self.cache_size -= 1;
                if self.cache_size == 0 {
                    break;
                }
            }
            self.cache = (self.low >> 24) as u8;
        }
        self.cache_size += 1;
        // The byte just settled (or parked in `cache`) is dropped; only
        // the still-moving low 24 bits shift up.
        self.low = (self.low & 0x00FF_FFFF) << 8;
    }

    /// Encodes one bit under probability `p` (of the bit being 0), and
    /// adapts `p` toward what was seen.
    fn bit(&mut self, p: &mut u16, bit: u32) {
        let bound = (self.range >> RC_PROB_BITS) * u32::from(*p);
        if bit == 0 {
            self.range = bound;
            *p += ((1 << RC_PROB_BITS) - *p) >> RC_MOVE_BITS;
        } else {
            self.low += u64::from(bound);
            self.range -= bound;
            *p -= *p >> RC_MOVE_BITS;
        }
        while self.range < RC_TOP {
            self.range <<= 8;
            self.shift_low();
        }
    }

    fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }
}

/// The matching range decoder. Bytes past the end of the stream read as
/// zero — output length is bounded by the caller's loop, so a truncated
/// or hostile stream yields deterministic garbage of the declared length
/// (which the artifact layer has already CRC-screened), never a panic or
/// an oversized allocation.
struct RcDecoder<'a> {
    input: &'a [u8],
    pos: usize,
    range: u32,
    code: u32,
}

impl<'a> RcDecoder<'a> {
    fn new(input: &'a [u8]) -> RcDecoder<'a> {
        let mut d = RcDecoder {
            input,
            pos: 1, // the encoder's first byte is its initial empty cache
            range: u32::MAX,
            code: 0,
        };
        for _ in 0..4 {
            d.code = (d.code << 8) | u32::from(d.next_byte());
        }
        d
    }

    fn next_byte(&mut self) -> u8 {
        let b = self.input.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    fn bit(&mut self, p: &mut u16) -> u32 {
        let bound = (self.range >> RC_PROB_BITS) * u32::from(*p);
        let bit = if self.code < bound {
            self.range = bound;
            *p += ((1 << RC_PROB_BITS) - *p) >> RC_MOVE_BITS;
            0
        } else {
            self.code -= bound;
            self.range -= bound;
            *p -= *p >> RC_MOVE_BITS;
            1
        };
        while self.range < RC_TOP {
            self.range <<= 8;
            self.code = (self.code << 8) | u32::from(self.next_byte());
        }
        bit
    }
}

/// Adaptive order-0 range coder over bytes: each byte is coded MSB-first
/// through a 255-node probability tree (every prefix of bits owns its own
/// adaptive estimate — the LZMA literal-coder layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rc;

impl Codec for Rc {
    fn id(&self) -> u8 {
        3
    }
    fn name(&self) -> &'static str {
        "rc"
    }
    fn size_preserving(&self) -> bool {
        false
    }
    fn encode(&self, input: &[u8]) -> Vec<u8> {
        let mut probs = vec![1u16 << (RC_PROB_BITS - 1); 256];
        let mut enc = RcEncoder::new();
        for &byte in input {
            let mut ctx = 1usize;
            for shift in (0..8).rev() {
                let bit = u32::from(byte >> shift) & 1;
                enc.bit(&mut probs[ctx], bit);
                ctx = (ctx << 1) | bit as usize;
            }
        }
        enc.finish()
    }
    fn decode(&self, input: &[u8], raw_len: usize) -> Result<Vec<u8>, StoreError> {
        // The output loop is bounded by `raw_len`, which the manifest
        // layer has capped against the stored length; memory never grows
        // past the declared (validated) decoded size.
        let mut probs = vec![1u16 << (RC_PROB_BITS - 1); 256];
        let mut dec = RcDecoder::new(input);
        let mut out = Vec::with_capacity(raw_len.min(1 << 20));
        for _ in 0..raw_len {
            let mut ctx = 1usize;
            for _ in 0..8 {
                let bit = dec.bit(&mut probs[ctx]);
                ctx = (ctx << 1) | bit as usize;
            }
            out.push((ctx & 0xFF) as u8);
        }
        Ok(out)
    }
}

/// One codec in a declared stack, in its manifest wire form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecSpec {
    /// [`ByteShuffle`] with the given record stride.
    ByteShuffle {
        /// Record width in bytes.
        stride: u8,
    },
    /// [`Lz`].
    Lz,
    /// [`Rc`].
    Rc,
}

impl CodecSpec {
    /// Wire id (must match the [`Codec::id`] of the built codec).
    pub fn id(self) -> u8 {
        match self {
            CodecSpec::ByteShuffle { .. } => 1,
            CodecSpec::Lz => 2,
            CodecSpec::Rc => 3,
        }
    }

    /// Builds the codec this spec declares.
    pub fn build(self) -> Box<dyn Codec> {
        match self {
            CodecSpec::ByteShuffle { stride } => Box::new(ByteShuffle { stride }),
            CodecSpec::Lz => Box::new(Lz),
            CodecSpec::Rc => Box::new(Rc),
        }
    }

    fn size_preserving(self) -> bool {
        !matches!(self, CodecSpec::Lz | CodecSpec::Rc)
    }
}

/// An ordered codec stack: applied left-to-right on encode, right-to-left
/// on decode. Empty = raw storage.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CodecStack(pub Vec<CodecSpec>);

impl CodecStack {
    /// The raw (empty) stack.
    pub fn raw() -> CodecStack {
        CodecStack(Vec::new())
    }

    /// `byte-shuffle(stride) → lz`: the stack fitted to f32 payloads.
    pub fn shuffle_lz(stride: u8) -> CodecStack {
        CodecStack(vec![CodecSpec::ByteShuffle { stride }, CodecSpec::Lz])
    }

    /// `lz` alone.
    pub fn lz() -> CodecStack {
        CodecStack(vec![CodecSpec::Lz])
    }

    /// `byte-shuffle(stride) → rc`: lane transposition exposes the skewed
    /// sign/exponent byte of each f32 to the entropy coder.
    pub fn shuffle_rc(stride: u8) -> CodecStack {
        CodecStack(vec![CodecSpec::ByteShuffle { stride }, CodecSpec::Rc])
    }

    /// `rc` alone.
    pub fn rc() -> CodecStack {
        CodecStack(vec![CodecSpec::Rc])
    }

    /// Whether the payload is stored raw.
    pub fn is_raw(&self) -> bool {
        self.0.is_empty()
    }

    /// Short human name for reports: `raw`, `lz`, `byte-shuffle+lz`, …
    pub fn describe(&self) -> String {
        if self.is_raw() {
            return "raw".to_string();
        }
        self.0
            .iter()
            .map(|s| s.build().name())
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Structural sanity: bounded length, valid strides, and only the
    /// *last* codec may change the payload length — every earlier decode
    /// step then knows its expected output size exactly. Called on every
    /// stack decoded from a manifest before it is ever run.
    pub fn validate(&self) -> Result<(), StoreError> {
        if self.0.len() > MAX_STACK_LEN {
            return Err(StoreError::Format(format!(
                "codec stack of {} exceeds the {MAX_STACK_LEN}-codec cap",
                self.0.len()
            )));
        }
        for (i, spec) in self.0.iter().enumerate() {
            if let CodecSpec::ByteShuffle { stride } = spec {
                if *stride < 2 {
                    return Err(StoreError::Format(format!(
                        "byte-shuffle stride {stride} (must be ≥ 2)"
                    )));
                }
            }
            if i + 1 < self.0.len() && !spec.size_preserving() {
                return Err(StoreError::Format(
                    "length-changing codec before the end of its stack".into(),
                ));
            }
        }
        Ok(())
    }

    /// Encodes `input` through the whole stack.
    pub fn encode(&self, input: &[u8]) -> Vec<u8> {
        let mut cur: Option<Vec<u8>> = None;
        for spec in &self.0 {
            let next = spec.build().encode(cur.as_deref().unwrap_or(input));
            cur = Some(next);
        }
        cur.unwrap_or_else(|| input.to_vec())
    }

    /// Decodes `input` back to exactly `raw_len` bytes, undoing the stack
    /// in reverse. Because only the final codec may change length, every
    /// intermediate stage also decodes to `raw_len` bytes.
    pub fn decode(&self, input: &[u8], raw_len: usize) -> Result<Vec<u8>, StoreError> {
        self.validate()?;
        if self.is_raw() {
            return Raw.decode(input, raw_len);
        }
        let mut cur: Option<Vec<u8>> = None;
        for spec in self.0.iter().rev() {
            let next = spec
                .build()
                .decode(cur.as_deref().unwrap_or(input), raw_len)?;
            cur = Some(next);
        }
        Ok(cur.expect("non-empty stack"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn byte(rng: &mut StdRng) -> u8 {
        rng.gen::<u32>() as u8
    }

    fn sample_payloads() -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(7);
        let mut out = vec![
            Vec::new(),
            vec![0u8],
            vec![0u8; 4096],
            b"abcabcabcabcabcabcabcabc".to_vec(),
            (0..=255u8).cycle().take(1000).collect(),
        ];
        // Gaussian-ish f32 bytes: what weight tensors actually look like.
        let mut f32s = Vec::new();
        for _ in 0..2048 {
            let v: f32 = (rng.gen::<f32>() - 0.5) * 0.1;
            f32s.extend_from_slice(&v.to_le_bytes());
        }
        out.push(f32s);
        // Incompressible noise.
        out.push((0..4097).map(|_| byte(&mut rng)).collect());
        // Odd length (byte-shuffle tail path).
        out.push((0..1003).map(|_| byte(&mut rng)).collect());
        out
    }

    #[test]
    fn every_codec_roundtrips_every_payload() {
        let codecs: Vec<Box<dyn Codec>> = vec![
            Box::new(Raw),
            Box::new(ByteShuffle { stride: 4 }),
            Box::new(ByteShuffle { stride: 2 }),
            Box::new(Lz),
            Box::new(Rc),
        ];
        for payload in sample_payloads() {
            for codec in &codecs {
                let enc = codec.encode(&payload);
                let dec = codec.decode(&enc, payload.len()).unwrap_or_else(|e| {
                    panic!("{} failed on {} bytes: {e}", codec.name(), payload.len())
                });
                assert_eq!(dec, payload, "{} roundtrip", codec.name());
            }
        }
    }

    #[test]
    fn stacks_roundtrip_and_validate() {
        for payload in sample_payloads() {
            for stack in [
                CodecStack::raw(),
                CodecStack::lz(),
                CodecStack::shuffle_lz(4),
                CodecStack::rc(),
                CodecStack::shuffle_rc(4),
            ] {
                stack.validate().expect("valid stack");
                let enc = stack.encode(&payload);
                assert_eq!(
                    stack.decode(&enc, payload.len()).expect("decode"),
                    payload,
                    "stack {}",
                    stack.describe()
                );
            }
        }
    }

    #[test]
    fn lz_compresses_runs_and_shuffle_helps_f32() {
        let runs = vec![42u8; 100_000];
        let enc = Lz.encode(&runs);
        // The token format tops out at 131 bytes per 3-byte match token
        // (~43.7×); a pure run must land near that ceiling.
        assert!(enc.len() < runs.len() / 40, "RLE case: {} bytes", enc.len());

        // Clustered-exponent f32 data. LZ alone finds almost nothing —
        // full-entropy mantissas leave no exact repeats — but the shuffle
        // isolates the sign/exponent lane (measured ≈2.7 bits/byte of
        // entropy) where the range coder collects real savings.
        let mut rng = StdRng::seed_from_u64(11);
        let mut f32s = Vec::new();
        for _ in 0..50_000 {
            let v: f32 = (rng.gen::<f32>() - 0.5) * 0.02;
            f32s.extend_from_slice(&v.to_le_bytes());
        }
        let plain = CodecStack::lz().encode(&f32s).len();
        let shuffled = CodecStack::shuffle_lz(4).encode(&f32s).len();
        assert!(
            shuffled < plain && shuffled < f32s.len(),
            "shuffle+lz {shuffled} vs lz {plain} vs raw {}",
            f32s.len()
        );
        let entropy_coded = CodecStack::shuffle_rc(4).encode(&f32s).len();
        assert!(
            entropy_coded < f32s.len() * 85 / 100,
            "shuffle+rc {entropy_coded} vs raw {} — range coder must clear \
             the 15% reduction bar on gaussian f32",
            f32s.len()
        );
    }

    #[test]
    fn invalid_stacks_are_rejected() {
        // Length-changing codec before the end.
        let bad = CodecStack(vec![CodecSpec::Lz, CodecSpec::ByteShuffle { stride: 4 }]);
        assert!(matches!(bad.validate(), Err(StoreError::Format(_))));
        // Degenerate stride.
        let bad = CodecStack(vec![CodecSpec::ByteShuffle { stride: 1 }]);
        assert!(matches!(bad.validate(), Err(StoreError::Format(_))));
        // Over-long stack.
        let bad = CodecStack(vec![CodecSpec::Lz; MAX_STACK_LEN + 1]);
        assert!(matches!(bad.validate(), Err(StoreError::Format(_))));
    }

    /// Hostile LZ streams must produce structured errors, never panics or
    /// giant allocations.
    #[test]
    fn lz_decode_rejects_hostile_streams() {
        let cases: Vec<(Vec<u8>, usize)> = vec![
            (vec![0x7F], 128),                                // literal run with no bytes
            (vec![0x80], 4),                                  // match with no distance
            (vec![0x80, 0x01], 4),                            // truncated distance
            (vec![0x80, 0x01, 0x00], 4),                      // distance 1 into empty output
            (vec![0x80, 0x00, 0x00], 4),                      // distance 0
            (vec![0x00, 0xAA], 0),                            // output exceeds declared len
            (vec![0x00, 0xAA], 100),                          // stream ends short of declared len
            (vec![0x00, 0xAA, 0xFF, 0x01, 0x00], usize::MAX), // huge declared len
        ];
        for (stream, raw_len) in cases {
            match Lz.decode(&stream, raw_len) {
                Err(StoreError::Format(_)) => {}
                other => panic!("stream {stream:?} (raw_len {raw_len}): {other:?}"),
            }
        }
    }

    /// Random garbage fed to the decoder must never panic.
    #[test]
    fn lz_decode_survives_random_garbage() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..200 {
            let n = rng.gen_range(0..200usize);
            let garbage: Vec<u8> = (0..n).map(|_| byte(&mut rng)).collect();
            let raw_len = rng.gen_range(0..400usize);
            let _ = Lz.decode(&garbage, raw_len); // any Result is fine
            let _ = ByteShuffle { stride: 4 }.decode(&garbage, raw_len);
            let _ = CodecStack::shuffle_lz(4).decode(&garbage, raw_len);
            let _ = CodecStack::shuffle_rc(4).decode(&garbage, raw_len);
        }
    }

    /// The range decoder is total: any input (including empty or
    /// truncated streams) decodes to exactly `raw_len` bytes. Corruption
    /// is caught by the stored-bytes CRC before decode ever runs.
    #[test]
    fn rc_decode_is_total_and_truncation_changes_output() {
        let mut rng = StdRng::seed_from_u64(41);
        let payload: Vec<u8> = (0..1000).map(|_| byte(&mut rng) % 17).collect();
        let enc = Rc.encode(&payload);
        assert_eq!(Rc.decode(&enc, payload.len()).unwrap(), payload);
        // Truncated stream: still total, still the declared length.
        let cut = Rc.decode(&enc[..enc.len() / 2], payload.len()).unwrap();
        assert_eq!(cut.len(), payload.len());
        assert_ne!(cut, payload);
        // Degenerate inputs.
        assert_eq!(Rc.decode(&[], 16).unwrap().len(), 16);
        assert_eq!(Rc.decode(&[0xFF], 0).unwrap().len(), 0);
    }
}
