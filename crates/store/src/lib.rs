//! `quq-store`: the on-disk model-artifact format (`QUQM`) and its
//! reader/writer — the missing persistence layer between calibration and
//! serving.
//!
//! A QUQM artifact holds everything a host needs to serve a calibrated QUQ
//! model without re-synthesizing, re-calibrating, or re-encoding anything:
//! the model configuration, the PTQ preset, every FP32 model tensor, every
//! fitted quantizer's parameters, and every per-site quantized weight as a
//! ready-to-ship `QUB1` record (the paper's Fig. 5 sideband: QUB payload +
//! two FC registers + base scale). Chunks are laid out behind a manifest —
//! site key → offset/length/CRC-32/shape — and each chunk is independently
//! checksummed, so a reader can verify and load one layer at a time
//! (the chunked-array / per-chunk-checksum shape proven by Zarr stores).
//!
//! Artifacts are read and written through a pluggable [`Storage`] trait
//! (filesystem [`FsStorage`] by default, in-memory [`MemStorage`] for
//! tests) — the format layer never touches files directly.
//!
//! * [`ArtifactWriter::save`] writes to a temp file and atomically renames —
//!   a crashed save never leaves a half-written artifact at the target path.
//!   [`ArtifactWriter::save_on`] targets any [`Storage`] backend.
//! * [`Artifact::open`] / [`Artifact::open_on`] validate the header,
//!   metadata, and manifest (CRC-checked) without reading any chunk.
//! * [`Artifact::load_site`] / [`Artifact::load_all`] read lazily and
//!   verify each chunk's checksum before decoding it.
//!
//! Every load path is hardened against corrupt or hostile files: all
//! structural fields are covered by a checksum, lengths are validated
//! against the real file size before any allocation, and QUB payload reads
//! are bounded by the manifest chunk length
//! ([`quq_core::read_qub_tensor_bounded`]). Flipping any single byte of an
//! artifact yields a structured [`StoreError`], never a panic, a wrong
//! model, or a huge allocation (property-tested in `tests/corruption.rs`).
//!
//! The `store.*` observability surface (via `quq-obs`): `store.bytes_written`,
//! `store.bytes_read`, `store.chunk_loads`, `store.checksum_failures`, and
//! the `store.save` / `store.open` / `store.load_all` latency spans.

pub mod codec;
pub mod crc32;
pub mod format;
pub mod mmap;
pub mod reader;
pub mod storage;
pub mod writer;

use std::fmt;

pub use codec::{Codec, CodecSpec, CodecStack};
pub use crc32::crc32;
pub use format::{ChunkInfo, ChunkKind, MAGIC, VERSION};
pub use mmap::{Mapping, MmapStorage};
pub use reader::{Artifact, Chunk};
pub use storage::{ByteView, FsStorage, MemStorage, Storage};
pub use writer::{ArtifactWriter, CodecChoice, SaveReport, WriteOptions};

/// Errors of the QUQM artifact store.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem in the artifact bytes.
    Format(String),
    /// A checksum did not match: the named section is corrupt.
    Checksum {
        /// Which section failed ("header", "metadata", "manifest", or a
        /// chunk key).
        section: String,
        /// CRC-32 recorded in the artifact.
        expected: u32,
        /// CRC-32 of the bytes actually read.
        actual: u32,
    },
    /// The manifest has no chunk under the requested key.
    MissingChunk(String),
    /// The artifact (or the tables being saved) uses a feature this store
    /// does not support, e.g. non-QUQ quantizers.
    Unsupported(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Format(m) => write!(f, "malformed QUQM artifact: {m}"),
            StoreError::Checksum {
                section,
                expected,
                actual,
            } => write!(
                f,
                "checksum mismatch in {section}: recorded {expected:#010x}, computed {actual:#010x}"
            ),
            StoreError::MissingChunk(k) => write!(f, "no chunk under key {k:?}"),
            StoreError::Unsupported(m) => write!(f, "unsupported artifact feature: {m}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<quq_core::WireError> for StoreError {
    fn from(e: quq_core::WireError) -> Self {
        match e {
            quq_core::WireError::Io(e) => StoreError::Io(e),
            quq_core::WireError::Format(m) => StoreError::Format(format!("QUB1 record: {m}")),
        }
    }
}
