//! Round-trip and corruption-hardening tests of the QUQM artifact store.
//!
//! The headline property: flipping **any** single byte of a saved artifact
//! yields a structured [`StoreError`] from `open` + `load_all` — never a
//! panic, never a silently wrong model, never a huge allocation. This holds
//! because every byte of a QUQM file is covered by exactly one CRC-32
//! (header, metadata, manifest, or a chunk), and a single-byte flip always
//! changes a CRC-32.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use proptest::prelude::*;
use quq_core::pipeline::{calibrate, PtqConfig, PtqTables};
use quq_core::quantizer::QuqMethod;
use quq_store::format::{decode_manifest, encode_manifest};
use quq_store::{
    crc32, Artifact, ArtifactWriter, Chunk, CodecChoice, CodecStack, FsStorage, MemStorage,
    Storage, StoreError, WriteOptions,
};
use quq_vit::{Dataset, ModelConfig, VitModel};

static COUNTER: AtomicUsize = AtomicUsize::new(0);

fn temp_path(tag: &str) -> PathBuf {
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("quqm-test-{}-{tag}-{n}.quqm", std::process::id()))
}

fn calibrated() -> (VitModel, PtqTables) {
    let config = ModelConfig::test_config();
    let model = VitModel::synthesize(config, 11);
    let data = Dataset::calibration(model.config(), 4, 3);
    let tables = calibrate(
        &QuqMethod::without_optimization(),
        &model,
        &data,
        PtqConfig::full_w8a8(),
    )
    .expect("calibration succeeds");
    (model, tables)
}

/// One saved artifact, built once and shared by every test case.
fn artifact_bytes() -> &'static Vec<u8> {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let (model, tables) = calibrated();
        let path = temp_path("fixture");
        ArtifactWriter::save(&model, &tables, &path).expect("save succeeds");
        let bytes = fs::read(&path).expect("read artifact back");
        let _ = fs::remove_file(&path);
        bytes
    })
}

/// The same model saved with a forced codec stack on **every** chunk —
/// QUB records included, which Auto would normally keep raw. Exercises the
/// compressed decode paths under the byte-flip property.
fn forced_artifact_bytes(
    stack: fn() -> CodecStack,
    slot: &'static OnceLock<Vec<u8>>,
) -> &'static Vec<u8> {
    slot.get_or_init(|| {
        let (model, tables) = calibrated();
        let mem = MemStorage::new();
        let options = WriteOptions {
            codec: CodecChoice::Force(stack()),
            ..WriteOptions::default()
        };
        let report =
            ArtifactWriter::save_on_with(&model, &tables, &mem, "f.quqm", &options).expect("save");
        assert!(
            report.chunks.iter().all(|c| !c.stack.is_raw()),
            "Force must compress every chunk"
        );
        mem.get("f.quqm").expect("object stored").to_vec()
    })
}

fn shuffle_lz_artifact_bytes() -> &'static Vec<u8> {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    forced_artifact_bytes(|| CodecStack::shuffle_lz(4), &BYTES)
}

fn rc_artifact_bytes() -> &'static Vec<u8> {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    forced_artifact_bytes(CodecStack::rc, &BYTES)
}

/// The same model saved as a v1 (raw, pre-codec) artifact through the
/// compat write path.
fn v1_artifact_bytes() -> &'static Vec<u8> {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let (model, tables) = calibrated();
        let mem = MemStorage::new();
        ArtifactWriter::save_on_with(&model, &tables, &mem, "v1.quqm", &WriteOptions::v1())
            .expect("v1 save");
        mem.get("v1.quqm").expect("object stored").to_vec()
    })
}

#[test]
fn save_open_load_roundtrip_is_exact() {
    let (model, tables) = calibrated();
    let path = temp_path("roundtrip");
    let written = ArtifactWriter::save(&model, &tables, &path).expect("save");
    assert_eq!(written, fs::metadata(&path).expect("stat").len());

    let art = Artifact::open(&path).expect("open");
    assert_eq!(art.model_config(), model.config());
    assert_eq!(art.ptq_config(), tables.config());
    assert_eq!(art.method(), "QUQ");
    assert_eq!(art.size_bytes(), written);

    // Every manifest chunk loads and checksum-verifies.
    for info in art.chunks().to_vec() {
        art.load_site(&info.key).unwrap_or_else(|e| {
            panic!("chunk {:?} failed to load: {e}", info.key);
        });
    }
    assert!(matches!(
        art.load_site("no/such/chunk"),
        Err(StoreError::MissingChunk(_))
    ));

    let (loaded_model, loaded_tables) = art.load_all().expect("load_all");
    // Model tensors are restored bit-exactly.
    assert_eq!(loaded_model.weights(), model.weights());
    // Quantizer parameters are restored exactly (raw f32 scale factors).
    for (key, q) in tables.activations() {
        let loaded = loaded_tables.activation(key).expect("activation present");
        assert_eq!(loaded.quq_params(), q.quq_params(), "activation {key:?}");
    }
    for (site, q) in tables.weight_quantizers() {
        let loaded = loaded_tables
            .weight_quantizer(site)
            .expect("weight present");
        assert_eq!(loaded.quq_params(), q.quq_params(), "weight {site}");
    }
    // Stored QUB records decode to the same fake-quantized weights the
    // in-memory tables carry.
    for site in art.qub_sites() {
        let qub = art.load_qub(site).expect("qub loads");
        let inmem = tables
            .weight_quantizer(&site)
            .and_then(|q| q.quq_params())
            .expect("site has QUQ params");
        let original = tables.original_weight(&site).expect("original recorded");
        let expect = inmem.fake_quantize_tensor(original);
        assert_eq!(qub.dequantize().data(), expect.data(), "site {site}");
    }
    let _ = fs::remove_file(&path);
}

#[test]
fn save_leaves_no_temp_file_behind() {
    let (model, tables) = calibrated();
    let path = temp_path("atomic");
    ArtifactWriter::save(&model, &tables, &path).expect("save");
    let dir = path.parent().expect("parent dir");
    let stem = path
        .file_stem()
        .expect("stem")
        .to_string_lossy()
        .to_string();
    let leftovers: Vec<_> = fs::read_dir(dir)
        .expect("read dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().to_string())
        .filter(|n| n.contains(&stem) && n.contains("tmp"))
        .collect();
    assert!(
        leftovers.is_empty(),
        "temp files left behind: {leftovers:?}"
    );
    let _ = fs::remove_file(&path);
}

#[test]
fn truncated_artifact_is_rejected_at_every_length() {
    let bytes = artifact_bytes();
    // Check a spread of truncation points including the structural
    // boundaries near the start and the final byte.
    let mut cuts: Vec<usize> = (0..64.min(bytes.len())).collect();
    cuts.extend((1..=8).map(|k| bytes.len() - k));
    cuts.push(bytes.len() / 2);
    for cut in cuts {
        let path = temp_path("trunc");
        fs::write(&path, &bytes[..cut]).expect("write truncated");
        let outcome = Artifact::open(&path).and_then(|a| a.load_all().map(|_| ()));
        assert!(outcome.is_err(), "truncation to {cut} bytes was accepted");
        let _ = fs::remove_file(&path);
    }
}

#[test]
fn params_tables_load_standalone() {
    let bytes = artifact_bytes();
    let path = temp_path("tables");
    fs::write(&path, bytes).expect("write");
    let art = Artifact::open(&path).expect("open");
    match art
        .load_site("params/activations")
        .expect("activations chunk")
    {
        Chunk::ActivationParams(v) => assert!(!v.is_empty()),
        other => panic!("wrong chunk kind: {other:?}"),
    }
    match art.load_site("params/weights").expect("weights chunk") {
        Chunk::WeightParams(v) => assert!(!v.is_empty()),
        other => panic!("wrong chunk kind: {other:?}"),
    }
    let _ = fs::remove_file(&path);
}

/// Rewrites the artifact header's declared block lengths and fixes up the
/// header CRC, producing a file whose header is *CRC-valid* but lies about
/// how big the metadata/manifest blocks are.
fn with_header_lengths(bytes: &[u8], meta_len: u64, manifest_len: u64) -> Vec<u8> {
    let mut out = bytes.to_vec();
    out[8..16].copy_from_slice(&meta_len.to_le_bytes());
    out[16..24].copy_from_slice(&manifest_len.to_le_bytes());
    let crc = crc32(&out[..24]);
    out[24..28].copy_from_slice(&crc.to_le_bytes());
    out
}

fn open_bytes(tag: &str, bytes: &[u8]) -> Result<(), StoreError> {
    let path = temp_path(tag);
    fs::write(&path, bytes).expect("write artifact");
    let outcome = Artifact::open(&path).and_then(|a| a.load_all().map(|_| ()));
    let _ = fs::remove_file(&path);
    outcome
}

/// A header whose declared lengths are huge — but whose CRC is *valid*, so
/// the checksum cannot save us — must produce a structured format error,
/// never a length-sized allocation. (Pre-`Storage`, `read_checked_block`
/// allocated `vec![0u8; len]` straight from these fields; every read now
/// goes through `Storage::read_range`, which clamps against the real
/// object size before allocating.)
#[test]
fn hostile_header_lengths_with_valid_crc_are_rejected() {
    let bytes = artifact_bytes();
    let real_meta = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let real_manifest = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let hostile = [
        (u64::MAX, real_manifest),
        (real_meta, u64::MAX),
        (u64::MAX / 2, u64::MAX / 2),
        (1 << 40, real_manifest), // "1 TiB of metadata"
        (real_meta, 1 << 40),
        (bytes.len() as u64, real_manifest), // fits u64 math, overruns file
        (real_meta, bytes.len() as u64),
    ];
    for (meta_len, manifest_len) in hostile {
        let corrupt = with_header_lengths(bytes, meta_len, manifest_len);
        match open_bytes("hostile-header", &corrupt) {
            Err(StoreError::Format(_)) => {}
            other => panic!(
                "meta_len={meta_len} manifest_len={manifest_len}: \
                 expected StoreError::Format, got {other:?}"
            ),
        }
    }
}

/// A manifest entry claiming a huge chunk length — re-encoded with valid
/// manifest and header CRCs — must be rejected structurally, and the huge
/// length must never reach an allocation.
#[test]
fn hostile_manifest_chunk_length_with_valid_crcs_is_rejected() {
    let bytes = artifact_bytes();
    let meta_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
    let manifest_len = u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
    let manifest_start = 28 + meta_len + 4;
    let manifest_bytes = &bytes[manifest_start..manifest_start + manifest_len];
    let entries = decode_manifest(manifest_bytes).expect("fixture manifest decodes");

    for victim in [0, entries.len() / 2, entries.len() - 1] {
        for huge in [u64::MAX, u64::MAX / 2, 1 << 40, bytes.len() as u64] {
            let mut tampered = entries.clone();
            tampered[victim].length = huge;
            let new_manifest = encode_manifest(&tampered);
            assert_eq!(new_manifest.len(), manifest_len, "fixed-width lengths");
            let mut corrupt = bytes.to_vec();
            corrupt[manifest_start..manifest_start + manifest_len].copy_from_slice(&new_manifest);
            let crc_at = manifest_start + manifest_len;
            corrupt[crc_at..crc_at + 4].copy_from_slice(&crc32(&new_manifest).to_le_bytes());
            match open_bytes("hostile-manifest", &corrupt) {
                Err(StoreError::Format(_)) => {}
                other => panic!(
                    "chunk {victim} length={huge}: expected StoreError::Format, got {other:?}"
                ),
            }
        }
    }
}

/// The same calibrated model saved through the filesystem backend and the
/// in-memory backend must produce byte-identical artifacts, and an
/// artifact opened from either backend must reconstruct the same model.
#[test]
fn artifact_roundtrips_byte_identically_through_both_backends() {
    let (model, tables) = calibrated();

    let path = temp_path("backends");
    let fs_written = ArtifactWriter::save(&model, &tables, &path).expect("fs save");
    let fs_bytes = fs::read(&path).expect("read back");

    let mem = Arc::new(MemStorage::new());
    let mem_written = ArtifactWriter::save_on(&model, &tables, &*mem, "m.quqm").expect("mem save");
    let mem_bytes = mem.get("m.quqm").expect("object stored");

    assert_eq!(fs_written, mem_written);
    assert_eq!(&fs_bytes, &*mem_bytes, "backends wrote different bytes");

    let from_fs = Artifact::open(&path).expect("fs open");
    let from_mem = Artifact::open_on(mem.clone() as Arc<dyn Storage>, "m.quqm").expect("mem open");
    assert_eq!(from_fs.size_bytes(), from_mem.size_bytes());
    assert_eq!(from_fs.chunks(), from_mem.chunks());

    let (fs_model, _) = from_fs.load_all().expect("fs load_all");
    let (mem_model, _) = from_mem.load_all().expect("mem load_all");
    assert_eq!(fs_model.weights(), mem_model.weights());
    assert_eq!(mem_model.weights(), model.weights());
    let _ = fs::remove_file(&path);
}

/// Compressed (forced-stack) and v1 artifacts must all reconstruct the
/// same model, bit for bit, as the default v2 Auto artifact.
#[test]
fn compressed_and_v1_artifacts_load_bit_identically() {
    let load = |bytes: &[u8], tag: &str| {
        let mem = MemStorage::new();
        mem.write(tag, bytes).expect("mem write");
        let art = Artifact::open_on(Arc::new(mem) as Arc<dyn Storage>, tag).expect("open");
        let (model, _) = art.load_all().expect("load_all");
        (art.version(), model)
    };
    let (v2_ver, v2_model) = load(artifact_bytes(), "auto");
    assert_eq!(v2_ver, 2);
    for (bytes, tag) in [
        (shuffle_lz_artifact_bytes(), "shuffle-lz"),
        (rc_artifact_bytes(), "rc"),
    ] {
        let (ver, model) = load(bytes, tag);
        assert_eq!(ver, 2, "{tag}");
        assert_eq!(model.weights(), v2_model.weights(), "{tag}");
    }
    let (v1_ver, v1_model) = load(v1_artifact_bytes(), "v1");
    assert_eq!(v1_ver, 1);
    assert_eq!(v1_model.weights(), v2_model.weights());
    // The codec work must actually pay: every forced-compressed file and
    // the Auto file land below the raw v1 byte count.
    assert!(artifact_bytes().len() < v1_artifact_bytes().len());
    assert!(shuffle_lz_artifact_bytes().len() < v1_artifact_bytes().len());
}

/// v1 is a raw-only format: asking the writer for v1 with any compression
/// policy other than raw is a structured error, not silent misencoding.
#[test]
fn v1_save_rejects_compression() {
    let (model, tables) = calibrated();
    let mem = MemStorage::new();
    for codec in [CodecChoice::Auto, CodecChoice::Force(CodecStack::lz())] {
        let options = WriteOptions { version: 1, codec };
        assert!(matches!(
            ArtifactWriter::save_on_with(&model, &tables, &mem, "bad.quqm", &options),
            Err(StoreError::Unsupported(_))
        ));
    }
}

/// A mid-write storage failure must surface the error *and* leave no
/// stranded `.tmp.` file behind: the drop guard unlinks the partial file.
#[test]
fn failed_save_cleans_up_its_temp_file() {
    let (model, tables) = calibrated();
    let dir = std::env::temp_dir().join(format!("quqm-failwrite-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("mkdir");
    // Fail at several points through the write, including 0 bytes in.
    for fail_after in [0usize, 1, 28, 4096] {
        let storage = FsStorage::failing_after(dir.clone(), fail_after);
        let err = ArtifactWriter::save_on(&model, &tables, &storage, "doomed.quqm");
        assert!(matches!(err, Err(StoreError::Io(_))), "fail@{fail_after}");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .expect("read dir")
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().to_string())
            .collect();
        assert!(
            leftovers.is_empty(),
            "fail@{fail_after} left files behind: {leftovers:?}"
        );
    }
    // The same directory still accepts a clean save afterwards.
    let storage = FsStorage::new(dir.clone());
    ArtifactWriter::save_on(&model, &tables, &storage, "ok.quqm").expect("clean save");
    assert!(dir.join("ok.quqm").exists());
    let _ = fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Flipping any single byte anywhere in the artifact must produce a
    /// structured error, never a panic or a silently-loaded wrong model.
    #[test]
    fn any_single_byte_flip_is_detected(pos_seed in 0u64..u64::MAX, bit in 0u32..8) {
        let bytes = artifact_bytes();
        let pos = (pos_seed % bytes.len() as u64) as usize;
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 1 << bit;

        let path = temp_path("flip");
        fs::write(&path, &corrupt).expect("write corrupted artifact");
        let outcome = Artifact::open(&path).and_then(|a| a.load_all().map(|_| ()));
        let _ = fs::remove_file(&path);
        match outcome {
            Err(_) => {} // structured StoreError: exactly what we want
            Ok(()) => prop_assert!(
                false,
                "flip at byte {pos} bit {bit} loaded without an error"
            ),
        }
    }

    /// The flip property holds just as hard when chunks are compressed:
    /// the CRC guards the *stored* bytes, so corruption is caught before
    /// a codec ever runs, and the range decoder is total regardless.
    #[test]
    fn single_byte_flips_in_compressed_artifacts_are_detected(
        pos_seed in 0u64..u64::MAX,
        bit in 0u32..8,
        which in 0usize..3,
    ) {
        let bytes = match which {
            0 => shuffle_lz_artifact_bytes(),
            1 => rc_artifact_bytes(),
            _ => v1_artifact_bytes(),
        };
        let pos = (pos_seed % bytes.len() as u64) as usize;
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 1 << bit;

        let mem = MemStorage::new();
        mem.write("flip.quqm", &corrupt).expect("mem write");
        let outcome = Artifact::open_on(Arc::new(mem) as Arc<dyn Storage>, "flip.quqm")
            .and_then(|a| a.load_all().map(|_| ()));
        match outcome {
            Err(_) => {}
            Ok(()) => prop_assert!(
                false,
                "fixture {which}: flip at byte {pos} bit {bit} loaded without an error"
            ),
        }
    }

    /// Arbitrary declared block lengths (with the header CRC fixed up so
    /// the lie is checksum-valid) must never panic, OOM, or load: anything
    /// that disagrees with the real file layout is a structured error.
    #[test]
    fn any_header_lengths_are_handled_structurally(
        meta_len in prop_oneof![0u64..(1 << 20), (1 << 20)..u64::MAX],
        manifest_len in prop_oneof![0u64..(1 << 20), (1 << 20)..u64::MAX],
    ) {
        let bytes = artifact_bytes();
        let real_meta = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let real_manifest = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        let corrupt = with_header_lengths(bytes, meta_len, manifest_len);
        let outcome = open_bytes("prop-header", &corrupt);
        if meta_len == real_meta && manifest_len == real_manifest {
            prop_assert!(outcome.is_ok(), "true lengths must keep loading");
        } else {
            prop_assert!(
                outcome.is_err(),
                "lengths ({meta_len}, {manifest_len}) accepted but the real \
                 layout is ({real_meta}, {real_manifest})"
            );
        }
    }
}
