//! Property-based tests for the tensor substrate invariants.

use proptest::prelude::*;
use quq_tensor::{linalg, nn, stats, Tensor};

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1.0e3f32..1.0e3f32, 1..max_len)
}

proptest! {
    #[test]
    fn reshape_round_trip(data in finite_vec(64)) {
        let n = data.len();
        let t = Tensor::from_vec(data, &[n]).unwrap();
        let r = t.reshape(&[1, n]).unwrap().into_reshape(&[n]).unwrap();
        prop_assert_eq!(t, r);
    }

    #[test]
    fn transpose_involution(rows in 1usize..8, cols in 1usize..8, seed in any::<u64>()) {
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        };
        let data: Vec<f32> = (0..rows * cols).map(|_| next()).collect();
        let t = Tensor::from_vec(data, &[rows, cols]).unwrap();
        let tt = t.transpose().unwrap().transpose().unwrap();
        prop_assert_eq!(t, tt);
    }

    #[test]
    fn matmul_identity(n in 1usize..8, data in finite_vec(64)) {
        prop_assume!(data.len() >= n * n);
        let a = Tensor::from_vec(data[..n * n].to_vec(), &[n, n]).unwrap();
        let i = Tensor::eye(n);
        let left = linalg::matmul(&i, &a).unwrap();
        let right = linalg::matmul(&a, &i).unwrap();
        prop_assert_eq!(&left, &a);
        prop_assert_eq!(&right, &a);
    }

    #[test]
    fn matmul_distributes_over_addition(n in 1usize..5, seed in any::<u64>()) {
        let mut state = seed | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        };
        let mk = |next: &mut dyn FnMut() -> f32| {
            Tensor::from_vec((0..n * n).map(|_| next()).collect(), &[n, n]).unwrap()
        };
        let a = mk(&mut next);
        let b = mk(&mut next);
        let c = mk(&mut next);
        let lhs = linalg::matmul(&a, &b.add(&c).unwrap()).unwrap();
        let rhs = linalg::matmul(&a, &b).unwrap().add(&linalg::matmul(&a, &c).unwrap()).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn softmax_rows_are_distributions(data in finite_vec(48)) {
        let n = data.len();
        let t = Tensor::from_vec(data, &[1, n]).unwrap();
        let s = nn::softmax(&t).unwrap();
        let sum: f32 = s.data().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(s.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn softmax_is_shift_invariant(data in finite_vec(16), shift in -50.0f32..50.0) {
        let n = data.len();
        let t = Tensor::from_vec(data.clone(), &[1, n]).unwrap();
        let shifted = Tensor::from_vec(data.iter().map(|x| x + shift).collect(), &[1, n]).unwrap();
        let a = nn::softmax(&t).unwrap();
        let b = nn::softmax(&shifted).unwrap();
        for (x, y) in a.data().iter().zip(b.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn quantile_is_monotone_in_q(data in finite_vec(64), q1 in 0.0f32..1.0, q2 in 0.0f32..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = stats::quantile(&data, lo).unwrap();
        let b = stats::quantile(&data, hi).unwrap();
        prop_assert!(a <= b + 1e-6);
    }

    #[test]
    fn quantile_within_range(data in finite_vec(64), q in 0.0f32..1.0) {
        let v = stats::quantile(&data, q).unwrap();
        let min = data.iter().copied().fold(f32::INFINITY, f32::min);
        let max = data.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!(v >= min - 1e-6 && v <= max + 1e-6);
    }

    #[test]
    fn mse_is_symmetric_and_nonnegative(pairs in prop::collection::vec((-1.0e3f32..1.0e3, -1.0e3f32..1.0e3), 1..32)) {
        let (data, other): (Vec<f32>, Vec<f32>) = pairs.into_iter().unzip();
        let n = data.len();
        let a = Tensor::from_vec(data, &[n]).unwrap();
        let b = Tensor::from_vec(other, &[n]).unwrap();
        let ab = stats::mse(&a, &b).unwrap();
        let ba = stats::mse(&b, &a).unwrap();
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn layer_norm_output_is_standardized(data in finite_vec(32)) {
        prop_assume!(data.len() >= 4);
        // Skip degenerate constant rows where variance ≈ 0.
        let mean0 = data.iter().sum::<f32>() / data.len() as f32;
        let var0 = data.iter().map(|&v| (v - mean0) * (v - mean0)).sum::<f32>() / data.len() as f32;
        prop_assume!(var0 > 1e-3);
        let n = data.len();
        let t = Tensor::from_vec(data, &[1, n]).unwrap();
        let g = Tensor::full(&[n], 1.0);
        let b = Tensor::zeros(&[n]);
        let y = nn::layer_norm(&t, &g, &b, 1e-6).unwrap();
        let mean: f32 = y.data().iter().sum::<f32>() / n as f32;
        prop_assert!(mean.abs() < 1e-3, "mean {mean}");
    }
}
