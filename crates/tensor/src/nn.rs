//! Special functions of the ViT data flow (paper Fig. 1, the "red"
//! components): Softmax, GELU, LayerNorm, plus `erf` used by exact GELU.

use crate::{Tensor, TensorError};

/// Error function via the Abramowitz–Stegun 7.1.26 rational approximation
/// (max absolute error ≈ 1.5e-7, ample for f32 inference).
pub fn erf(x: f32) -> f32 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    const A1: f32 = 0.254_829_6;
    const A2: f32 = -0.284_496_74;
    const A3: f32 = 1.421_413_7;
    const A4: f32 = -1.453_152;
    const A5: f32 = 1.061_405_4;
    const P: f32 = 0.327_591_1;
    let t = 1.0 / (1.0 + P * x);
    let y = 1.0 - ((((A5 * t + A4) * t + A3) * t + A2) * t + A1) * t * (-x * x).exp();
    sign * y
}

/// Exact GELU: `x · Φ(x)` with `Φ` the standard normal CDF.
///
/// This is the activation whose output the paper highlights as strongly
/// asymmetric (Fig. 3d): bounded below by ≈ −0.17, unbounded above.
pub fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + erf(x / std::f32::consts::SQRT_2))
}

/// Applies [`gelu`] elementwise.
pub fn gelu_tensor(x: &Tensor) -> Tensor {
    x.map(gelu)
}

/// Numerically stable softmax over the last axis.
///
/// The output is the paper's "post-Softmax" activation: non-negative, heavily
/// concentrated near zero with a long tail toward one (Fig. 3b).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for rank-0 tensors.
pub fn softmax(x: &Tensor) -> crate::Result<Tensor> {
    if x.rank() == 0 {
        return Err(TensorError::RankMismatch {
            expected: 1,
            actual: 0,
        });
    }
    let last = *x.shape().last().expect("rank >= 1");
    let mut out = x.clone();
    for row in out.data_mut().chunks_mut(last) {
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - m).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
    Ok(out)
}

/// Layer normalization over the last axis with affine parameters.
///
/// `y = (x − μ) / √(σ² + ε) · γ + β`, computed per row of the last axis.
///
/// # Errors
///
/// Returns a shape error when `gamma`/`beta` are not rank-1 vectors matching
/// the last axis.
pub fn layer_norm(x: &Tensor, gamma: &Tensor, beta: &Tensor, eps: f32) -> crate::Result<Tensor> {
    let last = *x
        .shape()
        .last()
        .ok_or_else(|| TensorError::InvalidArgument("layer_norm requires rank >= 1".to_string()))?;
    if gamma.rank() != 1 || gamma.len() != last {
        return Err(TensorError::ShapeMismatch {
            lhs: x.shape().to_vec(),
            rhs: gamma.shape().to_vec(),
        });
    }
    if beta.rank() != 1 || beta.len() != last {
        return Err(TensorError::ShapeMismatch {
            lhs: x.shape().to_vec(),
            rhs: beta.shape().to_vec(),
        });
    }
    let mut out = x.clone();
    let g = gamma.data();
    let b = beta.data();
    for row in out.data_mut().chunks_mut(last) {
        let mean = row.iter().sum::<f32>() / last as f32;
        let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / last as f32;
        let inv = 1.0 / (var + eps).sqrt();
        for (i, v) in row.iter_mut().enumerate() {
            *v = (*v - mean) * inv * g[i] + b[i];
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!(erf(0.0).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_8).abs() < 1e-5);
        assert!((erf(-1.0) + 0.842_700_8).abs() < 1e-5);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-5);
    }

    #[test]
    fn gelu_fixed_points_and_asymmetry() {
        assert_eq!(gelu(0.0), 0.0);
        // GELU(x) → x for large positive x, → 0 for large negative x.
        assert!((gelu(10.0) - 10.0).abs() < 1e-4);
        assert!(gelu(-10.0).abs() < 1e-4);
        // Global minimum ≈ −0.17 near x ≈ −0.7518: the bounded negative side.
        let min = (-200..0)
            .map(|i| gelu(i as f32 * 0.01))
            .fold(f32::INFINITY, f32::min);
        assert!(
            min > -0.18 && min < -0.16,
            "GELU min {min} outside expected band"
        );
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let s = softmax(&x).unwrap();
        for row in s.data().chunks(3) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            assert!(row.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn softmax_is_stable_for_large_inputs() {
        let x = Tensor::from_vec(vec![1000.0, 1001.0], &[1, 2]).unwrap();
        let s = softmax(&x).unwrap();
        assert!(s.data().iter().all(|v| v.is_finite()));
        assert!((s.data().iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn layer_norm_normalizes_rows() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 4]).unwrap();
        let g = Tensor::full(&[4], 1.0);
        let b = Tensor::zeros(&[4]);
        let y = layer_norm(&x, &g, &b, 1e-6).unwrap();
        let mean: f32 = y.data().iter().sum::<f32>() / 4.0;
        let var: f32 = y
            .data()
            .iter()
            .map(|&v| (v - mean) * (v - mean))
            .sum::<f32>()
            / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layer_norm_applies_affine() {
        let x = Tensor::from_vec(vec![0.0, 1.0], &[1, 2]).unwrap();
        let g = Tensor::from_vec(vec![2.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![5.0, 5.0], &[2]).unwrap();
        let y = layer_norm(&x, &g, &b, 1e-6).unwrap();
        // Normalized row is [-1, 1]; affine maps to [3, 7].
        assert!((y.data()[0] - 3.0).abs() < 1e-3);
        assert!((y.data()[1] - 7.0).abs() < 1e-3);
    }

    #[test]
    fn layer_norm_rejects_bad_params() {
        let x = Tensor::zeros(&[2, 4]);
        let g = Tensor::zeros(&[3]);
        let b = Tensor::zeros(&[4]);
        assert!(layer_norm(&x, &g, &b, 1e-6).is_err());
    }
}
