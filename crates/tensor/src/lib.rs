//! # quq-tensor — dense tensor substrate for the QUQ reproduction
//!
//! A small, dependency-light tensor library providing exactly what a
//! from-scratch vision-transformer inference stack needs:
//!
//! * [`Tensor`] — a dense, row-major `f32` tensor with shape arithmetic,
//!   elementwise maps, and slicing along the leading axis.
//! * [`IntTensor`] — the integer twin used by quantized execution paths.
//! * [`linalg`] — GEMM and batched matrix multiplication (the paper's
//!   "compute-intensive operations that can be implemented by GEMM").
//! * [`nn`] — Softmax, GELU, LayerNorm: the non-GEMM special functions a ViT
//!   block needs (paper Fig. 1).
//! * [`stats`] — quantiles, histograms, MSE/cosine metrics used by the
//!   progressive relaxation algorithm and by the evaluation harness.
//! * [`rng`] — deterministic samplers (normal, Laplace, Student-t, mixtures)
//!   used to build distribution-matched synthetic models.
//! * [`pool`] — a std-only work-stealing thread pool behind the parallel
//!   GEMM, calibration, and evaluation paths. Thread count comes from
//!   `QUQ_THREADS` (default: available parallelism); results are
//!   bit-identical at every thread count.
//!
//! The library is deliberately *not* generic over element type: the QUQ paper
//! operates on `f32` model data and small signed integers, and the two
//! concrete types keep the quantized/unquantized worlds visibly distinct.
//!
//! ```
//! use quq_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = quq_tensor::linalg::matmul(&a, &b)?;
//! assert_eq!(c.data(), a.data());
//! # Ok::<(), quq_tensor::TensorError>(())
//! ```

pub mod int_tensor;
pub mod linalg;
pub mod nn;
pub mod pool;
pub mod rng;
pub mod stats;
mod tensor;
pub mod tune;

pub use int_tensor::{I16Tensor, IntTensor};
pub use tensor::{Tensor, TensorError};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
