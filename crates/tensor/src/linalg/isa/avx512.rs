//! AVX-512 microkernels: `vpmaddwd` on 512-bit registers, and a
//! `vpdpwssd` (VNNI) variant where the host has `avx512vnni`.
//!
//! Lane math is the AVX2 argument doubled in width: each madd/dpwssd
//! lane is a pair sum ≤ 2^29 under [`crate::linalg::PANEL_BOUND`], two
//! per 64-element step sum to ≤ 2^30 in `i32` — exact — before one
//! widen into `i64`. VNNI's `vpdpwssd` fuses the madd and the `i32`
//! add into one instruction; seeded from zero and widened on the same
//! cadence it computes the identical exact value. Remainders below 32
//! elements re-enter the portable [`super::scalar::tile`] body.

use std::arch::x86_64::*;

/// Widens the sixteen exact `i32` lanes of `s` and adds them to `acc`.
#[target_feature(enable = "avx512f,avx512bw")]
#[inline]
unsafe fn add_widen_i32(acc: __m512i, s: __m512i) -> __m512i {
    let lo = _mm512_cvtepi32_epi64(_mm512_castsi512_si256(s));
    let hi = _mm512_cvtepi32_epi64(_mm512_extracti64x4_epi64::<1>(s));
    _mm512_add_epi64(acc, _mm512_add_epi64(lo, hi))
}

/// Horizontal sum of eight exact `i64` lanes.
#[target_feature(enable = "avx512f,avx512bw")]
#[inline]
unsafe fn hsum_i64(v: __m512i) -> i64 {
    _mm512_reduce_add_epi64(v)
}

/// `MR×JB` register tile over 32-lane `zmm` via `vpmaddwd`.
///
/// # Safety
///
/// Caller must have verified AVX-512F+BW at runtime; pointer bounds as
/// for [`super::scalar::tile`].
#[target_feature(enable = "avx512f,avx512bw")]
#[inline]
pub(crate) unsafe fn tile<const MR: usize, const JB: usize>(
    a: *const i16,
    ak: usize,
    b: *const i16,
    bk: usize,
    len: usize,
    out: &mut [[i64; JB]; MR],
) {
    let zero = _mm512_setzero_si512();
    let mut acc = [[zero; JB]; MR];
    let mut p = 0usize;
    while p + 64 <= len {
        let mut va0 = [zero; MR];
        let mut va1 = [zero; MR];
        let mut i = 0usize;
        while i < MR {
            va0[i] = _mm512_loadu_si512(a.add(i * ak + p) as *const __m512i);
            va1[i] = _mm512_loadu_si512(a.add(i * ak + p + 32) as *const __m512i);
            i += 1;
        }
        let mut j = 0usize;
        while j < JB {
            let vb0 = _mm512_loadu_si512(b.add(j * bk + p) as *const __m512i);
            let vb1 = _mm512_loadu_si512(b.add(j * bk + p + 32) as *const __m512i);
            let mut i = 0usize;
            while i < MR {
                let s = _mm512_add_epi32(
                    _mm512_madd_epi16(va0[i], vb0),
                    _mm512_madd_epi16(va1[i], vb1),
                );
                acc[i][j] = add_widen_i32(acc[i][j], s);
                i += 1;
            }
            j += 1;
        }
        p += 64;
    }
    if p + 32 <= len {
        let mut i = 0usize;
        while i < MR {
            let va = _mm512_loadu_si512(a.add(i * ak + p) as *const __m512i);
            let mut j = 0usize;
            while j < JB {
                let vb = _mm512_loadu_si512(b.add(j * bk + p) as *const __m512i);
                acc[i][j] = add_widen_i32(acc[i][j], _mm512_madd_epi16(va, vb));
                j += 1;
            }
            i += 1;
        }
        p += 32;
    }
    let mut tail = [[0i64; JB]; MR];
    if p < len {
        super::scalar::tile::<MR, JB>(a.add(p), ak, b.add(p), bk, len - p, &mut tail);
    }
    let mut i = 0usize;
    while i < MR {
        let mut j = 0usize;
        while j < JB {
            out[i][j] += hsum_i64(acc[i][j]) + tail[i][j];
            j += 1;
        }
        i += 1;
    }
}

/// `MR×JB` register tile over 32-lane `zmm` via `vpdpwssd` (VNNI).
///
/// # Safety
///
/// Caller must have verified AVX-512 VNNI at runtime; pointer bounds as
/// for [`super::scalar::tile`].
#[target_feature(enable = "avx512f,avx512bw,avx512vnni")]
#[inline]
pub(crate) unsafe fn vnni_tile<const MR: usize, const JB: usize>(
    a: *const i16,
    ak: usize,
    b: *const i16,
    bk: usize,
    len: usize,
    out: &mut [[i64; JB]; MR],
) {
    let zero = _mm512_setzero_si512();
    let mut acc = [[zero; JB]; MR];
    let mut p = 0usize;
    while p + 64 <= len {
        let mut va0 = [zero; MR];
        let mut va1 = [zero; MR];
        let mut i = 0usize;
        while i < MR {
            va0[i] = _mm512_loadu_si512(a.add(i * ak + p) as *const __m512i);
            va1[i] = _mm512_loadu_si512(a.add(i * ak + p + 32) as *const __m512i);
            i += 1;
        }
        let mut j = 0usize;
        while j < JB {
            let vb0 = _mm512_loadu_si512(b.add(j * bk + p) as *const __m512i);
            let vb1 = _mm512_loadu_si512(b.add(j * bk + p + 32) as *const __m512i);
            let mut i = 0usize;
            while i < MR {
                let s = _mm512_dpwssd_epi32(_mm512_dpwssd_epi32(zero, va0[i], vb0), va1[i], vb1);
                acc[i][j] = add_widen_i32(acc[i][j], s);
                i += 1;
            }
            j += 1;
        }
        p += 64;
    }
    if p + 32 <= len {
        let mut i = 0usize;
        while i < MR {
            let va = _mm512_loadu_si512(a.add(i * ak + p) as *const __m512i);
            let mut j = 0usize;
            while j < JB {
                let vb = _mm512_loadu_si512(b.add(j * bk + p) as *const __m512i);
                acc[i][j] = add_widen_i32(acc[i][j], _mm512_dpwssd_epi32(zero, va, vb));
                j += 1;
            }
            i += 1;
        }
        p += 32;
    }
    let mut tail = [[0i64; JB]; MR];
    if p < len {
        super::scalar::tile::<MR, JB>(a.add(p), ak, b.add(p), bk, len - p, &mut tail);
    }
    let mut i = 0usize;
    while i < MR {
        let mut j = 0usize;
        while j < JB {
            out[i][j] += hsum_i64(acc[i][j]) + tail[i][j];
            j += 1;
        }
        i += 1;
    }
}

super::isa_block_family!(block_fn, nest, tile, "avx512f,avx512bw");
super::isa_block_family!(
    vnni_block_fn,
    vnni_nest,
    vnni_tile,
    "avx512f,avx512bw,avx512vnni"
);
