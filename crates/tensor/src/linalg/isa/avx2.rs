//! AVX2 microkernel: `vpmaddwd` on 256-bit registers, 32 panel elements
//! per widen.
//!
//! Each `_mm256_madd_epi16` lane is a pair sum ≤ 2^29 under
//! [`crate::linalg::PANEL_BOUND`]; two madd results per 32-element step
//! sum to ≤ 2^30 in `i32` lanes — still exact — before one widen into
//! the `i64` accumulators, halving the widening traffic of the previous
//! one-widen-per-16 kernel. Remainders below 16 elements re-enter the
//! portable [`super::scalar::tile`] body.

use std::arch::x86_64::*;

/// Widens the eight exact `i32` lanes of `s` and adds them to `acc`.
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn add_widen_i32(acc: __m256i, s: __m256i) -> __m256i {
    let lo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(s));
    let hi = _mm256_cvtepi32_epi64(_mm256_extracti128_si256(s, 1));
    _mm256_add_epi64(acc, _mm256_add_epi64(lo, hi))
}

/// Horizontal sum of four exact `i64` lanes.
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn hsum_i64(v: __m256i) -> i64 {
    let s = _mm_add_epi64(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
    _mm_cvtsi128_si64(s) + _mm_extract_epi64(s, 1)
}

/// `MR×JB` register tile over 16-lane `ymm`; exact, ascending-`p`.
///
/// # Safety
///
/// Caller must have verified AVX2 at runtime; pointer bounds as for
/// [`super::scalar::tile`].
#[target_feature(enable = "avx2")]
#[inline]
pub(crate) unsafe fn tile<const MR: usize, const JB: usize>(
    a: *const i16,
    ak: usize,
    b: *const i16,
    bk: usize,
    len: usize,
    out: &mut [[i64; JB]; MR],
) {
    let zero = _mm256_setzero_si256();
    let mut acc = [[zero; JB]; MR];
    let mut p = 0usize;
    while p + 32 <= len {
        let mut va0 = [zero; MR];
        let mut va1 = [zero; MR];
        let mut i = 0usize;
        while i < MR {
            va0[i] = _mm256_loadu_si256(a.add(i * ak + p) as *const __m256i);
            va1[i] = _mm256_loadu_si256(a.add(i * ak + p + 16) as *const __m256i);
            i += 1;
        }
        let mut j = 0usize;
        while j < JB {
            let vb0 = _mm256_loadu_si256(b.add(j * bk + p) as *const __m256i);
            let vb1 = _mm256_loadu_si256(b.add(j * bk + p + 16) as *const __m256i);
            let mut i = 0usize;
            while i < MR {
                let s = _mm256_add_epi32(
                    _mm256_madd_epi16(va0[i], vb0),
                    _mm256_madd_epi16(va1[i], vb1),
                );
                acc[i][j] = add_widen_i32(acc[i][j], s);
                i += 1;
            }
            j += 1;
        }
        p += 32;
    }
    if p + 16 <= len {
        let mut i = 0usize;
        while i < MR {
            let va = _mm256_loadu_si256(a.add(i * ak + p) as *const __m256i);
            let mut j = 0usize;
            while j < JB {
                let vb = _mm256_loadu_si256(b.add(j * bk + p) as *const __m256i);
                acc[i][j] = add_widen_i32(acc[i][j], _mm256_madd_epi16(va, vb));
                j += 1;
            }
            i += 1;
        }
        p += 16;
    }
    let mut tail = [[0i64; JB]; MR];
    if p < len {
        super::scalar::tile::<MR, JB>(a.add(p), ak, b.add(p), bk, len - p, &mut tail);
    }
    let mut i = 0usize;
    while i < MR {
        let mut j = 0usize;
        while j < JB {
            out[i][j] += hsum_i64(acc[i][j]) + tail[i][j];
            j += 1;
        }
        i += 1;
    }
}

super::isa_block_family!(block_fn, nest, tile, "avx2");
