//! Runtime ISA dispatch for the packed-i16 GEMM microkernels.
//!
//! Every kernel family here computes the same thing — a block of output
//! rows of `A[m,k] · B[n,k]ᵀ` with exact `i64` accumulation — through the
//! same loop nest ([`nest_loops!`]) over a register tile of `MR` output
//! rows × `JB` output columns. Families differ only in how the innermost
//! `MR×JB` tile folds panel elements:
//!
//! * [`scalar`] — portable four-product `i32` chunks widened to `i64`.
//! * [`avx2`] — `vpmaddwd` on 16-lane `ymm`, two steps per widen.
//! * [`avx512`] — `vpmaddwd` on 32-lane `zmm`, plus a `vpdpwssd` (VNNI)
//!   variant where the host has `avx512vnni`.
//! * [`neon`] — `smlal`/`smlal2` (`vmull_s16`) with per-step pairwise
//!   widening on aarch64.
//!
//! Exactness is what makes the dispatch safe to vary: under the
//! [`crate::linalg::PANEL_BOUND`] contract every intermediate fits its
//! lane exactly, integer addition is associative, and therefore every
//! ISA × tile-shape combination produces identical output bytes.
//!
//! Selection happens **once per matmul** via [`resolve`] (the best
//! supported ISA, overridable with `QUQ_FORCE_ISA`), and the chosen
//! monomorphized kernel travels down to the thread pool as a plain
//! [`BlockFn`] pointer — workers never re-query CPUID or the
//! environment.

pub mod scalar;

#[cfg(target_arch = "x86_64")]
pub mod avx2;
#[cfg(target_arch = "x86_64")]
pub mod avx512;
#[cfg(target_arch = "aarch64")]
pub mod neon;

use std::sync::OnceLock;

/// One microkernel family. Ordering is preference: later variants are
/// faster on hosts that support them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Isa {
    /// Portable integer kernel; always available, always reachable.
    Scalar,
    /// aarch64 `smlal` family via `vmull_s16`/`vpadalq_s32`.
    Neon,
    /// x86-64 `vpmaddwd` on 256-bit registers.
    Avx2,
    /// x86-64 `vpmaddwd` on 512-bit registers (AVX-512F+BW).
    Avx512,
    /// x86-64 `vpdpwssd` (AVX-512 VNNI) on 512-bit registers.
    Avx512Vnni,
}

impl Isa {
    /// Stable lowercase name used by `QUQ_FORCE_ISA` and bench output.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Neon => "neon",
            Isa::Avx2 => "avx2",
            Isa::Avx512 => "avx512",
            Isa::Avx512Vnni => "avx512vnni",
        }
    }

    /// Parses a `QUQ_FORCE_ISA` value (case-insensitive [`Isa::name`]).
    pub fn parse(s: &str) -> Option<Isa> {
        match s.to_ascii_lowercase().as_str() {
            "scalar" => Some(Isa::Scalar),
            "neon" => Some(Isa::Neon),
            "avx2" => Some(Isa::Avx2),
            "avx512" => Some(Isa::Avx512),
            "avx512vnni" | "vnni" => Some(Isa::Avx512Vnni),
            _ => None,
        }
    }

    /// Panel elements consumed per SIMD step — the tuner pads candidate
    /// `KC` values to this and the prior uses it as the PE-array width.
    pub fn i16_lanes(self) -> usize {
        match self {
            Isa::Scalar => 4,
            Isa::Neon => 8,
            Isa::Avx2 => 16,
            Isa::Avx512 | Isa::Avx512Vnni => 32,
        }
    }

    /// Architectural vector registers available to the register tile.
    pub fn vector_regs(self) -> usize {
        match self {
            // The scalar kernel lives in GPRs; 16 is the effective budget.
            Isa::Scalar => 16,
            Isa::Neon => 32,
            Isa::Avx2 => 16,
            Isa::Avx512 | Isa::Avx512Vnni => 32,
        }
    }
}

/// ISAs usable on this host, detected once, preference-ordered ascending
/// (last entry is the default dispatch choice). Scalar is always present.
pub fn supported() -> &'static [Isa] {
    static SUPPORTED: OnceLock<Vec<Isa>> = OnceLock::new();
    SUPPORTED.get_or_init(|| {
        let mut v = vec![Isa::Scalar];
        #[cfg(target_arch = "aarch64")]
        if std::arch::is_aarch64_feature_detected!("neon") {
            v.push(Isa::Neon);
        }
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                v.push(Isa::Avx2);
            }
            if std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512bw")
            {
                v.push(Isa::Avx512);
                if std::arch::is_x86_feature_detected!("avx512vnni") {
                    v.push(Isa::Avx512Vnni);
                }
            }
        }
        v
    })
}

/// The best ISA the host supports (no override applied).
pub fn detect() -> Isa {
    *supported().last().expect("scalar is always supported")
}

/// Resolves the ISA for one matmul call: `QUQ_FORCE_ISA` when set (its
/// value must name a *supported* ISA — forcing an unsupported one is a
/// loud panic, since silently falling back would defeat the kernel-matrix
/// tests), otherwise [`detect`]. Read on the calling thread only; pool
/// workers receive the resolved kernel pointer.
pub fn resolve() -> Isa {
    match std::env::var("QUQ_FORCE_ISA") {
        Ok(v) if !v.is_empty() => {
            let isa = Isa::parse(&v)
                .unwrap_or_else(|| panic!("QUQ_FORCE_ISA={v:?}: unknown ISA (see Isa::name)"));
            assert!(
                supported().contains(&isa),
                "QUQ_FORCE_ISA={}: not supported on this host (supported: {:?})",
                isa.name(),
                supported().iter().map(|i| i.name()).collect::<Vec<_>>(),
            );
            isa
        }
        _ => detect(),
    }
}

/// A monomorphized block kernel: computes `block` (a chunk of whole output
/// rows starting at `first_row`) of `A·Bᵀ`, accumulating into `block`.
/// Arguments: `(a, b, block, first_row, k, n, kc)`.
pub type BlockFn = fn(&[i16], &[i16], &mut [i64], usize, usize, usize, usize);

/// Returns the kernel for `(isa, mr, jb)`, or `None` when the pair is
/// outside the monomorphized lattice (`mr ∈ {1,2,4}`, `jb ∈ {2,4,8}`).
/// The tuner only proposes lattice points; `None` here means a caller
/// bypassed it.
pub fn block_fn(isa: Isa, mr: usize, jb: usize) -> Option<BlockFn> {
    match isa {
        Isa::Scalar => scalar::block_fn(mr, jb),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => avx2::block_fn(mr, jb),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512 => avx512::block_fn(mr, jb),
        #[cfg(target_arch = "x86_64")]
        Isa::Avx512Vnni => avx512::vnni_block_fn(mr, jb),
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => neon::block_fn(mr, jb),
        #[allow(unreachable_patterns)]
        _ => None,
    }
}

/// Best-effort prefetch of the cache line at `p` into L1. `p` may be any
/// address (formed with `wrapping_add`); prefetches never fault.
#[inline(always)]
pub(crate) fn prefetch_i16(p: *const i16) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `_mm_prefetch` is a hint; it performs no memory access that
    // can fault and SSE is baseline on x86_64.
    unsafe {
        std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(p as *const i8)
    };
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// The shared loop nest every ISA's block kernel expands: `KC`-deep panels
/// of `k` (outermost, so a panel of `B` is reused across all rows of the
/// block), row groups of `MR`, column tiles of `JB`. Row and column
/// remainders re-enter the *same* generic tile body at width 1 — there is
/// exactly one accumulation body per ISA, so a tile-shape change cannot
/// desync main loop and tail.
///
/// `$tile` is the ISA's `unsafe fn tile<const MR, const JB>(a, ak, b, bk,
/// len, &mut [[i64; JB]; MR])` microkernel; `$mr`/`$jb` are the enclosing
/// function's const generic parameters. While a tile at column `j` is
/// computed, the first line of each B row of tile `j + JB` is prefetched.
///
/// Accumulation order for one output element is: panels ascending, `p`
/// ascending within a panel — identical for every `(MR, JB, KC)` and
/// every ISA, and exact, hence bit-identical everywhere.
macro_rules! nest_loops {
    ($tile:ident, $mr:ident, $jb:ident,
     $ad:expr, $bd:expr, $block:expr, $first_row:expr, $k:expr, $n:expr, $kc:expr) => {{
        let ad: &[i16] = $ad;
        let bd: &[i16] = $bd;
        let block: &mut [i64] = $block;
        let (first_row, k, n) = ($first_row, $k, $n);
        let kc: usize = ($kc).max(1);
        let rows = if n == 0 { 0 } else { block.len() / n };
        let mut panel_start = 0usize;
        while panel_start < k || (k == 0 && panel_start == 0) {
            let plen = kc.min(k - panel_start);
            let mut r = 0usize;
            while r < rows {
                let rh = if rows - r >= $mr { $mr } else { 1 };
                let abase = (first_row + r) * k + panel_start;
                let mut j = 0usize;
                while j + $jb <= n {
                    // Prefetch the first line of each B row of the next
                    // column tile while this one computes.
                    let mut jj = 0usize;
                    while jj < $jb {
                        if j + $jb + jj < n {
                            $crate::linalg::isa::prefetch_i16(
                                bd.as_ptr().wrapping_add((j + $jb + jj) * k + panel_start),
                            );
                        }
                        jj += 1;
                    }
                    let bbase = j * k + panel_start;
                    if rh == $mr {
                        let mut acc = [[0i64; $jb]; $mr];
                        // SAFETY: rows `first_row+r .. +rh` and columns
                        // `j .. j+$jb` are in bounds, and the tile reads
                        // `plen ≤ k - panel_start` elements per row.
                        unsafe {
                            $tile::<$mr, $jb>(
                                ad.as_ptr().add(abase),
                                k,
                                bd.as_ptr().add(bbase),
                                k,
                                plen,
                                &mut acc,
                            )
                        };
                        let mut i = 0usize;
                        while i < $mr {
                            let orow = (r + i) * n + j;
                            let mut jj = 0usize;
                            while jj < $jb {
                                block[orow + jj] += acc[i][jj];
                                jj += 1;
                            }
                            i += 1;
                        }
                    } else {
                        let mut acc = [[0i64; $jb]; 1];
                        // SAFETY: as above with a single row.
                        unsafe {
                            $tile::<1, $jb>(
                                ad.as_ptr().add(abase),
                                k,
                                bd.as_ptr().add(bbase),
                                k,
                                plen,
                                &mut acc,
                            )
                        };
                        let orow = r * n + j;
                        let mut jj = 0usize;
                        while jj < $jb {
                            block[orow + jj] += acc[0][jj];
                            jj += 1;
                        }
                    }
                    j += $jb;
                }
                while j < n {
                    let bbase = j * k + panel_start;
                    if rh == $mr {
                        let mut acc = [[0i64; 1]; $mr];
                        // SAFETY: as above with a single column.
                        unsafe {
                            $tile::<$mr, 1>(
                                ad.as_ptr().add(abase),
                                k,
                                bd.as_ptr().add(bbase),
                                k,
                                plen,
                                &mut acc,
                            )
                        };
                        let mut i = 0usize;
                        while i < $mr {
                            block[(r + i) * n + j] += acc[i][0];
                            i += 1;
                        }
                    } else {
                        let mut acc = [[0i64; 1]; 1];
                        // SAFETY: as above with a single row and column.
                        unsafe {
                            $tile::<1, 1>(
                                ad.as_ptr().add(abase),
                                k,
                                bd.as_ptr().add(bbase),
                                k,
                                plen,
                                &mut acc,
                            )
                        };
                        block[r * n + j] += acc[0][0];
                    }
                    j += 1;
                }
                r += rh;
            }
            if k == 0 {
                break;
            }
            panel_start += kc;
        }
    }};
}

pub(crate) use nest_loops;

/// Expands the standard per-ISA plumbing around [`nest_loops!`]: a `nest`
/// function carrying the ISA's `#[target_feature]` attributes, a safe
/// `block::<MR, JB>` wrapper that coerces to [`BlockFn`], and a
/// `block_fn(mr, jb)` lattice lookup. `$($feat)?` is the optional
/// target-feature string; `$detect` is a closure-free debug check that
/// the feature is actually present.
macro_rules! isa_block_family {
    ($block_fn:ident, $nest:ident, $tile:ident $(, $feat:literal)?) => {
        $(#[target_feature(enable = $feat)])?
        unsafe fn $nest<const MR: usize, const JB: usize>(
            ad: &[i16],
            bd: &[i16],
            block: &mut [i64],
            first_row: usize,
            k: usize,
            n: usize,
            kc: usize,
        ) {
            $crate::linalg::isa::nest_loops!($tile, MR, JB, ad, bd, block, first_row, k, n, kc);
        }

        /// Monomorphized lattice of `(MR, JB)` register tiles.
        pub(crate) fn $block_fn(mr: usize, jb: usize) -> Option<$crate::linalg::isa::BlockFn> {
            fn block<const MR: usize, const JB: usize>(
                ad: &[i16],
                bd: &[i16],
                block: &mut [i64],
                first_row: usize,
                k: usize,
                n: usize,
                kc: usize,
            ) {
                // SAFETY: kernels are only handed out through
                // `isa::block_fn`, whose callers resolve a *supported*
                // ISA first (`resolve`/tuner), so the target features the
                // nest was compiled for are present at runtime.
                unsafe { $nest::<MR, JB>(ad, bd, block, first_row, k, n, kc) }
            }
            Some(match (mr, jb) {
                (1, 2) => block::<1, 2>,
                (1, 4) => block::<1, 4>,
                (1, 8) => block::<1, 8>,
                (2, 2) => block::<2, 2>,
                (2, 4) => block::<2, 4>,
                (2, 8) => block::<2, 8>,
                (4, 2) => block::<4, 2>,
                (4, 4) => block::<4, 4>,
                (4, 8) => block::<4, 8>,
                _ => return None,
            })
        }
    };
}

pub(crate) use isa_block_family;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_always_supported_and_last_resort() {
        assert!(supported().contains(&Isa::Scalar));
        assert_eq!(supported()[0], Isa::Scalar);
        // Preference order is ascending: detect() picks the last entry.
        let d = detect();
        assert!(supported().iter().all(|i| *i <= d));
    }

    #[test]
    fn isa_names_round_trip() {
        for isa in [
            Isa::Scalar,
            Isa::Neon,
            Isa::Avx2,
            Isa::Avx512,
            Isa::Avx512Vnni,
        ] {
            assert_eq!(Isa::parse(isa.name()), Some(isa));
        }
        assert_eq!(Isa::parse("mmx"), None);
    }

    #[test]
    fn every_supported_isa_has_a_full_lattice() {
        for &isa in supported() {
            for mr in [1, 2, 4] {
                for jb in [2, 4, 8] {
                    assert!(
                        block_fn(isa, mr, jb).is_some(),
                        "{} missing ({mr},{jb})",
                        isa.name()
                    );
                }
            }
        }
        assert!(block_fn(Isa::Scalar, 3, 4).is_none());
        assert!(block_fn(Isa::Scalar, 1, 16).is_none());
    }
}
