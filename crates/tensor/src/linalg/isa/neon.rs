//! NEON microkernel for aarch64: the `smlal`/`smlal2` family via
//! `vmull_s16`/`vmull_high_s16`, widened pairwise into `i64` lanes.
//!
//! `vmull_s16` produces exact 32-bit products (≤ 2^28 under
//! [`crate::linalg::PANEL_BOUND`]); `vpadalq_s32` pairwise-widens the
//! four-product `i32x4` into `i64x2` accumulators every step, so no
//! intermediate can ever saturate — the kernel is exact at every `len`.
//! Remainders below 8 elements re-enter [`super::scalar::tile`].

use std::arch::aarch64::*;

/// `MR×JB` register tile over 8-lane `int16x8_t`.
///
/// # Safety
///
/// Caller must have verified NEON at runtime; pointer bounds as for
/// [`super::scalar::tile`].
#[target_feature(enable = "neon")]
#[inline]
pub(crate) unsafe fn tile<const MR: usize, const JB: usize>(
    a: *const i16,
    ak: usize,
    b: *const i16,
    bk: usize,
    len: usize,
    out: &mut [[i64; JB]; MR],
) {
    let zero = vdupq_n_s64(0);
    let mut acc = [[zero; JB]; MR];
    let mut p = 0usize;
    while p + 8 <= len {
        let mut va = [vdupq_n_s16(0); MR];
        let mut i = 0usize;
        while i < MR {
            va[i] = vld1q_s16(a.add(i * ak + p));
            i += 1;
        }
        let mut j = 0usize;
        while j < JB {
            let vb = vld1q_s16(b.add(j * bk + p));
            let mut i = 0usize;
            while i < MR {
                let lo = vmull_s16(vget_low_s16(va[i]), vget_low_s16(vb));
                let hi = vmull_high_s16(va[i], vb);
                acc[i][j] = vpadalq_s32(vpadalq_s32(acc[i][j], lo), hi);
                i += 1;
            }
            j += 1;
        }
        p += 8;
    }
    let mut tail = [[0i64; JB]; MR];
    if p < len {
        super::scalar::tile::<MR, JB>(a.add(p), ak, b.add(p), bk, len - p, &mut tail);
    }
    let mut i = 0usize;
    while i < MR {
        let mut j = 0usize;
        while j < JB {
            out[i][j] += vaddvq_s64(acc[i][j]) + tail[i][j];
            j += 1;
        }
        i += 1;
    }
}

super::isa_block_family!(block_fn, nest, tile, "neon");
