//! Portable microkernel: the one accumulation body behind the scalar
//! block family *and* every SIMD family's sub-step remainder.
//!
//! Four-product `i32` chunks (exact under
//! [`crate::linalg::PANEL_BOUND`]: each product ≤ 2^28, four sum to
//! ≤ 2^30) widened into `i64` per chunk — the same order the pre-SIMD
//! kernel used, kept so historical results stay bit-identical.

/// Accumulates `out[i][j] += Σ_p a[i·ak + p] · b[j·bk + p]` for
/// `p ∈ 0..len` in ascending order.
///
/// # Safety
///
/// `a` must be valid for reads at `i·ak + p` and `b` at `j·bk + p` for
/// all `i < MR`, `j < JB`, `p < len`.
#[inline(always)]
pub(crate) unsafe fn tile<const MR: usize, const JB: usize>(
    a: *const i16,
    ak: usize,
    b: *const i16,
    bk: usize,
    len: usize,
    out: &mut [[i64; JB]; MR],
) {
    let mut p = 0usize;
    while p + 4 <= len {
        let mut i = 0usize;
        while i < MR {
            let ar = a.add(i * ak + p);
            let mut j = 0usize;
            while j < JB {
                let br = b.add(j * bk + p);
                let mut s = 0i32;
                let mut q = 0usize;
                while q < 4 {
                    s += *ar.add(q) as i32 * *br.add(q) as i32;
                    q += 1;
                }
                out[i][j] += s as i64;
                j += 1;
            }
            i += 1;
        }
        p += 4;
    }
    while p < len {
        let mut i = 0usize;
        while i < MR {
            let x = *a.add(i * ak + p) as i32;
            let mut j = 0usize;
            while j < JB {
                out[i][j] += (x * *b.add(j * bk + p) as i32) as i64;
                j += 1;
            }
            i += 1;
        }
        p += 1;
    }
}

super::isa_block_family!(block_fn, nest, tile);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_matches_naive_dot_across_tail_lengths() {
        // Lengths straddle the 4-element chunk boundary.
        for len in [0usize, 1, 3, 4, 5, 7, 8, 11] {
            let a: Vec<i16> = (0..2 * len.max(1)).map(|v| v as i16 - 3).collect();
            let b: Vec<i16> = (0..3 * len.max(1))
                .map(|v| (v as i16).wrapping_mul(7))
                .collect();
            let mut out = [[0i64; 3]; 2];
            // SAFETY: strides cover `len` elements per row by construction.
            unsafe {
                tile::<2, 3>(
                    a.as_ptr(),
                    len.max(1),
                    b.as_ptr(),
                    len.max(1),
                    len,
                    &mut out,
                )
            };
            for i in 0..2 {
                for j in 0..3 {
                    let want: i64 = (0..len)
                        .map(|p| a[i * len.max(1) + p] as i64 * b[j * len.max(1) + p] as i64)
                        .sum();
                    assert_eq!(out[i][j], want, "len={len} ({i},{j})");
                }
            }
        }
    }
}
