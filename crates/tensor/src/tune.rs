//! Shape-aware tile autotuning for the packed-i16 GEMM.
//!
//! The blocked kernel has three free parameters — panel depth `KC`,
//! register-tile width `JB`, and height `MR` — whose best values depend
//! on the matmul shape, the operand bit-width, and the dispatched ISA.
//! [`tile_for`] searches that space **once per `(m, k, n, bits, isa)`**:
//! candidates are ranked by an analytical prior (by default a built-in
//! loads-per-MAC model; `quq-accel` installs its PE-array cost model via
//! [`set_prior`] so the reproduction's own hardware model seeds the
//! software search), the top few are measured on a small row sample of
//! the *real* operands, and the winner is memoized in a process-global
//! table. Every candidate kernel is exact, so tuning can never change
//! output bytes — only speed.
//!
//! Environment:
//! * `QUQ_TUNE=off` — skip searching; use the per-ISA default tile.
//! * `QUQ_TUNE=full` — measure every lattice candidate (no prior
//!   pruning, no time budget). Default: prior-pruned measured search
//!   with a [`SEARCH_BUDGET`] wall-clock guard.
//!
//! Observability: `tune.searches` / `tune.hits` counters and a
//! `tune.search` span on the global recorder, mirrored by process-local
//! atomics ([`stats`]) so tests see them even when obs is disabled.

use crate::linalg::isa::{self, Isa};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{LazyLock, RwLock};
use std::time::{Duration, Instant};

/// One point of the tile search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tile {
    /// Panel depth: elements of `k` processed per cache-blocking pass.
    pub kc: usize,
    /// Register-tile height: output rows accumulated together.
    pub mr: usize,
    /// Register-tile width: output columns accumulated together.
    pub jb: usize,
}

/// Shape facts handed to the prior alongside each candidate tile.
#[derive(Debug, Clone, Copy)]
pub struct TuneContext {
    /// Output rows.
    pub m: usize,
    /// Reduction depth.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// QUB bit-width hint (0 when unknown).
    pub bits: u32,
    /// `i16` lanes the ISA consumes per step (PE-array width).
    pub simd_i16_lanes: usize,
    /// Architectural vector registers available to the tile.
    pub vector_regs: usize,
    /// L1 data cache budget assumed for the active working set.
    pub l1_bytes: usize,
}

/// Analytical cost prior: lower is better. Must be a pure function of
/// its arguments (it ranks candidates before any measurement happens).
pub type PriorFn = fn(&TuneContext, Tile) -> f64;

/// Wall-clock guard for one default-mode search (`QUQ_TUNE` unset).
pub const SEARCH_BUDGET: Duration = Duration::from_millis(50);

/// Candidates measured in default mode (prior-ranked prefix, plus the
/// per-ISA default tile as a safety floor).
const SEARCH_TOP: usize = 4;

const KC_CANDIDATES: [usize; 4] = [64, 128, 256, 512];
const MR_CANDIDATES: [usize; 3] = [1, 2, 4];
const JB_CANDIDATES: [usize; 3] = [2, 4, 8];

static PRIOR: RwLock<PriorFn> = RwLock::new(builtin_prior);

type Key = (usize, usize, usize, u32, Isa);
static TABLE: LazyLock<RwLock<HashMap<Key, Tile>>> = LazyLock::new(|| RwLock::new(HashMap::new()));

static SEARCHES: AtomicU64 = AtomicU64::new(0);
static HITS: AtomicU64 = AtomicU64::new(0);

/// Search mode, from `QUQ_TUNE` (read per call on the calling thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuneMode {
    /// No search: per-ISA default tile.
    Off,
    /// Prior-pruned measured search (default).
    On,
    /// Exhaustive measured search.
    Full,
}

/// Reads `QUQ_TUNE`. Unset or unrecognized values mean [`TuneMode::On`].
pub fn mode() -> TuneMode {
    match std::env::var("QUQ_TUNE") {
        Ok(v) if v.eq_ignore_ascii_case("off") || v == "0" => TuneMode::Off,
        Ok(v) if v.eq_ignore_ascii_case("full") => TuneMode::Full,
        _ => TuneMode::On,
    }
}

/// Installs an external analytical prior (used by `quq-accel` to plug in
/// its PE-array cost model). Affects only future first-use searches;
/// memoized tiles keep their winners.
pub fn set_prior(f: PriorFn) {
    *PRIOR.write().unwrap_or_else(|e| e.into_inner()) = f;
}

/// `(searches, hits)` since process start. Memoization working means
/// hits grows and searches stays bounded by the number of distinct
/// shapes.
pub fn stats() -> (u64, u64) {
    (
        SEARCHES.load(Ordering::Relaxed),
        HITS.load(Ordering::Relaxed),
    )
}

/// The memoized tile for a shape, if a search already ran.
pub fn lookup(m: usize, k: usize, n: usize, bits: u32, isa: Isa) -> Option<Tile> {
    TABLE
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .get(&(m, k, n, bits, isa))
        .copied()
}

/// The static fallback tile used when tuning is off (and as the measured
/// safety floor in default mode). `Avx512*` defaults to a taller/deeper
/// tile than the legacy KC=128/JB=4: 32 registers fit a 4×4 block.
pub fn default_tile(isa: Isa) -> Tile {
    match isa {
        Isa::Scalar => Tile {
            kc: 128,
            mr: 1,
            jb: 4,
        },
        Isa::Neon => Tile {
            kc: 128,
            mr: 2,
            jb: 4,
        },
        Isa::Avx2 => Tile {
            kc: 128,
            mr: 2,
            jb: 4,
        },
        Isa::Avx512 | Isa::Avx512Vnni => Tile {
            kc: 256,
            mr: 4,
            jb: 4,
        },
    }
}

/// Returns the tile to run `A[m,k]·B[n,k]ᵀ` with on `isa`, searching and
/// memoizing on first use. `a`/`b` are the real operand panels — the
/// measured sample runs on live data so the timing sees realistic cache
/// behaviour. Exactness of every candidate means this choice can never
/// affect output bytes.
pub fn tile_for(a: &[i16], b: &[i16], m: usize, k: usize, n: usize, bits: u32, isa: Isa) -> Tile {
    if mode() == TuneMode::Off || m == 0 || n == 0 || k == 0 {
        return default_tile(isa);
    }
    let key = (m, k, n, bits, isa);
    if let Some(t) = lookup(m, k, n, bits, isa) {
        HITS.fetch_add(1, Ordering::Relaxed);
        quq_obs::add("tune.hits", 1);
        return t;
    }
    SEARCHES.fetch_add(1, Ordering::Relaxed);
    quq_obs::add("tune.searches", 1);
    let _span = quq_obs::span("tune.search");
    let winner = search(a, b, m, k, n, bits, isa);
    TABLE
        .write()
        .unwrap_or_else(|e| e.into_inner())
        .insert(key, winner);
    winner
}

/// Ranks the lattice by the installed prior and measures the best
/// candidates on a row sample of the real operands.
fn search(a: &[i16], b: &[i16], m: usize, k: usize, n: usize, bits: u32, isa: Isa) -> Tile {
    let ctx = TuneContext {
        m,
        k,
        n,
        bits,
        simd_i16_lanes: isa.i16_lanes(),
        vector_regs: isa.vector_regs(),
        l1_bytes: 32 * 1024,
    };
    let prior = *PRIOR.read().unwrap_or_else(|e| e.into_inner());

    let mut candidates: Vec<Tile> = Vec::new();
    for &kc in &KC_CANDIDATES {
        // Deeper-than-k panels all behave identically; keep one.
        let kc_eff = kc.min(k);
        for &mr in &MR_CANDIDATES {
            for &jb in &JB_CANDIDATES {
                let t = Tile { kc: kc_eff, mr, jb };
                if isa::block_fn(isa, mr, jb).is_some() && !candidates.contains(&t) {
                    candidates.push(t);
                }
            }
        }
    }
    // Deterministic order: prior score, then (kc, mr, jb) as tie-break.
    candidates.sort_by(|x, y| {
        prior(&ctx, *x)
            .total_cmp(&prior(&ctx, *y))
            .then_with(|| (x.kc, x.mr, x.jb).cmp(&(y.kc, y.mr, y.jb)))
    });

    let full = mode() == TuneMode::Full;
    if !full {
        let fallback = default_tile(isa);
        let floor = Tile {
            kc: fallback.kc.min(k),
            ..fallback
        };
        candidates.truncate(SEARCH_TOP);
        if !candidates.contains(&floor) {
            candidates.push(floor);
        }
    }

    // Measure on a sample of real rows: enough work to rank tiles,
    // small enough to stay inside the budget at ViT scale.
    let sample_rows = m.min(8);
    let mut scratch = vec![0i64; sample_rows * n];
    let a_sample = &a[..sample_rows * k];

    let started = Instant::now();
    let mut best = candidates[0];
    let mut best_nanos = u64::MAX;
    for (idx, &t) in candidates.iter().enumerate() {
        if !full && idx > 0 && started.elapsed() > SEARCH_BUDGET {
            break;
        }
        let kern = isa::block_fn(isa, t.mr, t.jb).expect("lattice-filtered above");
        let mut elapsed = u64::MAX;
        for _ in 0..2 {
            scratch.iter_mut().for_each(|v| *v = 0);
            let rep = Instant::now();
            kern(a_sample, b, &mut scratch, 0, k, n, t.kc);
            elapsed = elapsed.min(rep.elapsed().as_nanos() as u64);
        }
        if elapsed < best_nanos {
            best_nanos = elapsed;
            best = t;
        }
    }
    best
}

/// Built-in prior: relative cost per MAC of a `(KC, MR, JB)` tile.
///
/// * Operand traffic — each tile step loads `MR + JB` vectors to feed
///   `MR·JB` MAC vectors, so loads-per-MAC is `(MR+JB)/(MR·JB)`; bigger
///   tiles amortize better.
/// * Register pressure — accumulators plus live operands beyond the
///   architectural register file spill to the stack every step.
/// * L1 residency — the active `B` panel (`JB·KC`) plus `A` slice
///   (`MR·KC`) should fit L1 alongside output rows.
/// * Panel overhead — each panel pass re-enters the tile and re-touches
///   output accumulators; deeper `KC` amortizes that over more MACs.
///
/// `quq-accel` replaces this with a GE-weighted version of the same
/// structure derived from the paper's PE-array cost model.
fn builtin_prior(ctx: &TuneContext, t: Tile) -> f64 {
    let (mr, jb) = (t.mr as f64, t.jb as f64);
    let loads_per_mac = (mr + jb) / (mr * jb);

    let live_vectors = t.mr * t.jb + 2 * t.mr + 2;
    let spill = if live_vectors > ctx.vector_regs {
        0.35 * (live_vectors - ctx.vector_regs) as f64
    } else {
        0.0
    };

    let panel_bytes = 2 * t.kc * (t.jb + t.mr);
    let l1_pressure = if panel_bytes > ctx.l1_bytes {
        panel_bytes as f64 / ctx.l1_bytes as f64
    } else {
        0.0
    };

    let kc_eff = t.kc.min(ctx.k).max(1) as f64;
    let panel_overhead = (ctx.simd_i16_lanes as f64) / kc_eff;

    1.0 + loads_per_mac + spill + l1_pressure + panel_overhead
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_prior_prefers_square_tiles_and_deeper_panels() {
        let ctx = TuneContext {
            m: 197,
            k: 384,
            n: 384,
            bits: 6,
            simd_i16_lanes: 16,
            vector_regs: 16,
            l1_bytes: 32 * 1024,
        };
        let skinny = Tile {
            kc: 64,
            mr: 1,
            jb: 2,
        };
        let square = Tile {
            kc: 128,
            mr: 2,
            jb: 4,
        };
        assert!(builtin_prior(&ctx, square) < builtin_prior(&ctx, skinny));
        // A tile that cannot fit the register file is penalized.
        let huge = Tile {
            kc: 128,
            mr: 4,
            jb: 8,
        };
        assert!(builtin_prior(&ctx, huge) > builtin_prior(&ctx, square));
    }

    #[test]
    fn default_tiles_are_on_the_kernel_lattice() {
        for &isa in isa::supported() {
            let t = default_tile(isa);
            assert!(isa::block_fn(isa, t.mr, t.jb).is_some());
        }
    }

    #[test]
    fn tile_for_memoizes_per_shape() {
        // A shape no other test uses, so the first call searches and the
        // rest hit the table deterministically.
        let (m, k, n) = (5usize, 37usize, 3usize);
        let a = vec![7i16; m * k];
        let b = vec![-3i16; n * k];
        let isa = Isa::Scalar;
        let t1 = tile_for(&a, &b, m, k, n, 6, isa);
        let (s1, _) = stats();
        let t2 = tile_for(&a, &b, m, k, n, 6, isa);
        let (s2, h2) = stats();
        assert_eq!(t1, t2, "same shape must resolve to the same tile");
        assert_eq!(s1, s2, "second call must not search again");
        assert!(h2 >= 1, "second call must count a cache hit");
        assert_eq!(lookup(m, k, n, 6, isa), Some(t1));
    }
}
