//! Std-only work-stealing thread pool behind every parallel hot path.
//!
//! The paper's workloads — calibration sweeps, per-image evaluation, and the
//! GEMMs every "green" op reduces to — are embarrassingly parallel across
//! rows/images/sites. This module provides the one primitive they all share:
//! [`parallel_for`], a blocking index-range fan-out executed on a global
//! pool of persistent workers.
//!
//! **Scheduling.** Each call splits `0..n` into one contiguous *span* per
//! thread. A thread pops `grain`-sized chunks from the front of its own
//! span; when its span runs dry it *steals the back half* of the fullest
//! remaining span. Stealing halves keeps contention logarithmic in the
//! number of chunks and load-balances uneven per-chunk cost (e.g. early-exit
//! rows) without any cross-chunk ordering constraints.
//!
//! **Determinism.** Chunks are disjoint index ranges and the closure is
//! required to confine its writes to its own range, so results are
//! *bit-identical for every thread count* — which thread runs a chunk can
//! never matter. `QUQ_THREADS=1` additionally forces fully inline execution
//! (no pool threads at all), the reference mode the test suite compares
//! against.
//!
//! **Nesting.** A `parallel_for` issued from inside a pool worker (e.g. a
//! parallel GEMM under a parallel evaluation loop) runs inline on that
//! worker: the outer fan-out already owns every thread, and blocking a
//! worker on an inner fan-out could deadlock the pool.
//!
//! Thread count comes from the `QUQ_THREADS` environment variable (read
//! once, at first use), defaulting to [`std::thread::available_parallelism`].

use std::any::Any;
use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;

/// Locks `m`, recovering the guard even if another thread panicked while
/// holding it. Every mutex in this module protects state that stays
/// consistent across a panic (span bounds are updated before user code
/// runs; job lists and flags are plain values), so poisoning carries no
/// information here — propagating it would only cascade one task's panic
/// into unrelated jobs on the shared pool.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

thread_local! {
    /// Set on pool workers and inside [`run_serial`]: forces inline runs.
    static FORCE_INLINE: Cell<bool> = const { Cell::new(false) };
}

/// Type-erased pointer to the caller's chunk closure. The submitting call
/// blocks until every chunk completes, so the pointee outlives all uses.
struct RawFunc(*const (dyn Fn(Range<usize>) + Sync));

// SAFETY: the pointee is `Sync` (shared calls are safe) and the submitter
// keeps it alive for the whole job; the raw pointer is only dereferenced
// while the job is live.
unsafe impl Send for RawFunc {}
unsafe impl Sync for RawFunc {}

/// One fan-out: spans of unclaimed indices plus completion bookkeeping.
struct Job {
    /// Per-thread spans of unclaimed work, `(start, end)`.
    spans: Vec<Mutex<(usize, usize)>>,
    /// Preferred chunk size popped per claim.
    grain: usize,
    /// Indices not yet completed; 0 means the job is finished.
    pending: AtomicUsize,
    /// Payload of the first chunk panic (the submitter re-raises it).
    panic_payload: Mutex<Option<Box<dyn Any + Send>>>,
    func: RawFunc,
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl Job {
    /// Claims the next chunk: own span first, then steal the back half of
    /// the fullest span. Returns `None` when no unclaimed work remains.
    fn claim(&self, home: usize) -> Option<Range<usize>> {
        {
            let mut span = lock_unpoisoned(&self.spans[home]);
            if span.0 < span.1 {
                let start = span.0;
                let end = span.1.min(start + self.grain);
                span.0 = end;
                quq_obs::add("pool.chunks", 1);
                return Some(start..end);
            }
        }
        // Own span is dry: steal from the fullest victim.
        loop {
            let victim = self
                .spans
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != home)
                .max_by_key(|(_, s)| {
                    let s = lock_unpoisoned(s);
                    s.1.saturating_sub(s.0)
                })?;
            let mut span = lock_unpoisoned(victim.1);
            let len = span.1.saturating_sub(span.0);
            if len == 0 {
                drop(span);
                // The fullest span drained between scan and lock; rescan,
                // and stop once every span reads empty.
                if self.spans.iter().all(|s| {
                    let s = lock_unpoisoned(s);
                    s.0 >= s.1
                }) {
                    return None;
                }
                continue;
            }
            // Take the back half (at least one grain) directly as a chunk
            // source: pop one grain now, park the rest in the home span.
            let take = (len / 2).max(self.grain.min(len));
            let stolen_start = span.1 - take;
            let stolen_end = span.1;
            span.1 = stolen_start;
            drop(span);
            let chunk_end = stolen_end.min(stolen_start + self.grain);
            if chunk_end < stolen_end {
                let mut home_span = lock_unpoisoned(&self.spans[home]);
                debug_assert!(
                    home_span.0 >= home_span.1,
                    "home span must be dry before install"
                );
                *home_span = (chunk_end, stolen_end);
            }
            quq_obs::add("pool.steals", 1);
            quq_obs::add("pool.chunks", 1);
            return Some(stolen_start..chunk_end);
        }
    }

    /// Runs chunks until no unclaimed work remains.
    fn work(&self, home: usize) {
        while let Some(chunk) = self.claim(home) {
            let len = chunk.len();
            // SAFETY: the submitter blocks until `pending` hits zero, so the
            // closure behind the raw pointer is still alive here.
            let func = unsafe { &*self.func.0 };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| func(chunk))) {
                // Keep the first payload; the submitter re-raises it so the
                // original panic (message and all) surfaces at the
                // `parallel_for` call site instead of wedging the pool.
                let mut slot = lock_unpoisoned(&self.panic_payload);
                slot.get_or_insert(payload);
            }
            if self.pending.fetch_sub(len, Ordering::SeqCst) == len {
                let mut done = lock_unpoisoned(&self.done);
                *done = true;
                self.done_cv.notify_all();
            }
        }
    }

    /// Whether any span still holds unclaimed indices.
    fn has_work(&self) -> bool {
        self.spans.iter().any(|s| {
            let s = lock_unpoisoned(s);
            s.0 < s.1
        })
    }
}

/// Shared state between the pool's workers and submitting threads.
struct Shared {
    /// Jobs with (potentially) unclaimed work.
    jobs: Mutex<Vec<Arc<Job>>>,
    jobs_cv: Condvar,
    /// Set by [`ThreadPool::shutdown`]: workers exit once no job has
    /// unclaimed work, and later submissions run inline.
    shutdown: AtomicBool,
}

/// The process-wide pool: `threads` participants (workers + submitter).
pub struct ThreadPool {
    shared: Arc<Shared>,
    threads: usize,
    /// Worker join handles, taken exactly once by [`ThreadPool::shutdown`].
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl ThreadPool {
    fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            jobs: Mutex::new(Vec::new()),
            jobs_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        // The submitting thread is participant 0; spawn the rest.
        let mut workers = Vec::with_capacity(threads.saturating_sub(1));
        for worker in 1..threads {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("quq-pool-{worker}"))
                    .spawn(move || worker_loop(&shared, worker))
                    .expect("spawn pool worker"),
            );
        }
        Self {
            shared,
            threads,
            workers: Mutex::new(workers),
        }
    }

    /// The configured number of participants (≥ 1).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether [`ThreadPool::shutdown`] has run: the pool then executes
    /// every submission inline on the caller.
    pub fn is_shut_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Drains and joins the pool's workers. In-flight jobs complete first
    /// (workers only exit once no job holds unclaimed work, and a
    /// submitting thread always finishes its own job), subsequent
    /// [`parallel_for`] calls run inline on the caller — same results, no
    /// pool threads — and the call blocks until every worker thread has
    /// exited. Idempotent and safe to call from any thread.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.jobs_cv.notify_all();
        let handles = std::mem::take(&mut *lock_unpoisoned(&self.workers));
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Runs `f` over disjoint chunks covering `0..n`, blocking until all
    /// chunks complete. Falls back to one inline call for serial
    /// configurations, nested calls, trivially small `n`, and shut-down
    /// pools.
    fn scope(&self, n: usize, grain: usize, f: &(dyn Fn(Range<usize>) + Sync)) {
        if n == 0 {
            return;
        }
        let grain = grain.max(1);
        let inline =
            self.threads == 1 || n <= grain || FORCE_INLINE.with(Cell::get) || self.is_shut_down();
        if inline {
            f(0..n);
            return;
        }
        let spans = split_spans(n, self.threads);
        // SAFETY: erases the borrow's lifetime; this call blocks until
        // `pending` reaches zero, so no worker touches `f` after return.
        let func = unsafe {
            std::mem::transmute::<
                *const (dyn Fn(Range<usize>) + Sync + '_),
                *const (dyn Fn(Range<usize>) + Sync + 'static),
            >(f)
        };
        let job = Arc::new(Job {
            spans: spans.into_iter().map(Mutex::new).collect(),
            grain,
            pending: AtomicUsize::new(n),
            panic_payload: Mutex::new(None),
            func: RawFunc(func),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        });
        {
            let mut jobs = lock_unpoisoned(&self.shared.jobs);
            jobs.push(Arc::clone(&job));
            quq_obs::add("pool.jobs", 1);
            quq_obs::record("pool.queue_depth", jobs.len() as u64);
            self.shared.jobs_cv.notify_all();
        }
        // Participate as thread 0 (nested calls from here run inline).
        FORCE_INLINE.with(|flag| flag.set(true));
        job.work(0);
        FORCE_INLINE.with(|flag| flag.set(false));
        // Wait for chunks still in flight on workers.
        let mut done = lock_unpoisoned(&job.done);
        while !*done {
            done = match job.done_cv.wait(done) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        drop(done);
        // Retire the job so workers stop scanning it.
        let mut jobs = lock_unpoisoned(&self.shared.jobs);
        jobs.retain(|j| !Arc::ptr_eq(j, &job));
        drop(jobs);
        // Re-raise the first chunk panic at the submitting call site. The
        // pool itself stays healthy: spans are drained, the job is retired,
        // and no mutex poisoning leaks into later jobs.
        let payload = lock_unpoisoned(&job.panic_payload).take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

/// Splits `0..n` into `threads` contiguous spans of near-equal length.
fn split_spans(n: usize, threads: usize) -> Vec<(usize, usize)> {
    let per = n / threads;
    let extra = n % threads;
    let mut spans = Vec::with_capacity(threads);
    let mut start = 0;
    for t in 0..threads {
        let len = per + usize::from(t < extra);
        spans.push((start, start + len));
        start += len;
    }
    spans
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared, home: usize) {
    FORCE_INLINE.with(|flag| flag.set(true));
    loop {
        let job = {
            let mut jobs = lock_unpoisoned(&shared.jobs);
            loop {
                if let Some(job) = jobs.iter().find(|j| j.has_work()) {
                    break Some(Arc::clone(job));
                }
                // Exit only at a drained point: every unclaimed chunk of
                // every job has an owner, so nothing is abandoned.
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                jobs = match shared.jobs_cv.wait(jobs) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        match job {
            Some(job) => job.work(home % job.spans.len()),
            None => return,
        }
    }
}

/// Returns the global pool, building it on first use from `QUQ_THREADS`
/// (default: available parallelism).
pub fn global() -> &'static ThreadPool {
    global_cell().get_or_init(|| ThreadPool::new(configured_threads()))
}

/// Thread count the pool will use: `QUQ_THREADS` if set to a positive
/// integer, otherwise the machine's available parallelism.
pub fn configured_threads() -> usize {
    std::env::var("QUQ_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// The number of pool participants (≥ 1); 1 means fully serial execution.
pub fn num_threads() -> usize {
    global().threads()
}

/// Drains and joins the global pool's workers (see
/// [`ThreadPool::shutdown`]): in-flight `parallel_for` calls complete,
/// worker threads exit and are joined, and later calls run inline on the
/// caller with identical results. Call before process exit when a clean
/// thread ledger matters (e.g. the serving binary's graceful drain).
/// Idempotent; only shuts the pool down if it was ever built.
pub fn shutdown_global() {
    if let Some(pool) = global_if_built() {
        pool.shutdown();
    }
}

/// The global pool if some call already built it (never forces a build —
/// shutting down a pool nobody used would spawn threads just to join them).
fn global_if_built() -> Option<&'static ThreadPool> {
    global_cell().get()
}

fn global_cell() -> &'static OnceLock<ThreadPool> {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    &POOL
}

/// Runs `f` on disjoint subranges covering `0..n`, in parallel when the
/// pool has more than one thread. `f` must confine its effects to the range
/// it is handed; under that contract results are bit-identical for every
/// thread count.
///
/// # Panics
///
/// Panics when any chunk panics.
pub fn parallel_for(n: usize, grain: usize, f: impl Fn(Range<usize>) + Sync) {
    global().scope(n, grain, &f);
}

/// [`parallel_for`] with an automatic grain: ~4 chunks per thread, so
/// stealing can still balance uneven chunks without drowning in claims.
pub fn parallel_for_auto(n: usize, f: impl Fn(Range<usize>) + Sync) {
    let grain = (n / (num_threads() * 4)).max(1);
    parallel_for(n, grain, f);
}

/// Splits `out` into `grain`-sized consecutive pieces and calls
/// `f(first_index, piece)` for each, in parallel. The disjoint `&mut`
/// pieces make this the safe way to fill an output buffer from the pool.
///
/// # Panics
///
/// Panics when any chunk panics.
pub fn parallel_chunks_mut<T: Send>(
    out: &mut [T],
    grain: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    let len = out.len();
    let grain = grain.max(1);
    let base = out.as_mut_ptr() as usize;
    parallel_for(len, grain, |range| {
        // SAFETY: `parallel_for` hands out disjoint ranges of `0..len`, so
        // each reconstructed slice is exclusively owned by this chunk.
        let chunk = unsafe {
            std::slice::from_raw_parts_mut((base as *mut T).add(range.start), range.len())
        };
        f(range.start, chunk);
    });
}

/// Row-aligned variant of [`parallel_chunks_mut`] for matrix outputs:
/// splits `out` (a row-major `rows × cols` buffer) into blocks of whole
/// rows and calls `f(first_row, block)` for each block in parallel.
///
/// # Panics
///
/// Panics when `out.len()` is not a multiple of `cols`, or when any chunk
/// panics.
pub fn parallel_rows_mut<T: Send>(
    out: &mut [T],
    cols: usize,
    grain_rows: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert_eq!(out.len() % cols.max(1), 0, "buffer must be whole rows");
    let rows = out.len().checked_div(cols).unwrap_or(0);
    let base = out.as_mut_ptr() as usize;
    parallel_for(rows, grain_rows.max(1), |range| {
        // SAFETY: `parallel_for` hands out disjoint row ranges, so each
        // reconstructed block of rows is exclusively owned by this chunk.
        let block = unsafe {
            std::slice::from_raw_parts_mut(
                (base as *mut T).add(range.start * cols),
                range.len() * cols,
            )
        };
        f(range.start, block);
    });
}

/// Runs `f` with all pool parallelism disabled on this thread: every
/// `parallel_for` inside executes inline, in index order. This is the
/// serial reference mode benchmarks and determinism tests compare against.
pub fn run_serial<R>(f: impl FnOnce() -> R) -> R {
    let previous = FORCE_INLINE.with(|flag| flag.replace(true));
    let result = f();
    FORCE_INLINE.with(|flag| flag.set(previous));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_partition_the_range() {
        for n in [0usize, 1, 7, 64, 1000] {
            for threads in [1usize, 2, 3, 8] {
                let spans = split_spans(n, threads);
                assert_eq!(spans.len(), threads);
                let mut next = 0;
                for (s, e) in spans {
                    assert_eq!(s, next);
                    assert!(e >= s);
                    next = e;
                }
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn parallel_for_visits_every_index_once() {
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(n, 64, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn parallel_chunks_mut_fills_disjoint_pieces() {
        let mut out = vec![0usize; 5000];
        parallel_chunks_mut(&mut out, 37, |start, chunk| {
            for (off, slot) in chunk.iter_mut().enumerate() {
                *slot = start + off;
            }
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn parallel_rows_mut_hands_out_whole_rows() {
        let cols = 7;
        let rows = 123;
        let mut out = vec![0usize; rows * cols];
        parallel_rows_mut(&mut out, cols, 5, |first_row, block| {
            assert_eq!(block.len() % cols, 0, "block must be whole rows");
            for (off, slot) in block.iter_mut().enumerate() {
                *slot = first_row * cols + off;
            }
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn nested_parallel_for_runs_inline_without_deadlock() {
        let total = AtomicUsize::new(0);
        parallel_for(64, 4, |outer| {
            for _ in outer {
                parallel_for(16, 4, |inner| {
                    total.fetch_add(inner.len(), Ordering::SeqCst);
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 64 * 16);
    }

    #[test]
    fn run_serial_forces_inline_execution() {
        // Inline execution visits chunks in index order on one thread.
        let order = Mutex::new(Vec::new());
        run_serial(|| {
            parallel_for(100, 10, |range| {
                order.lock().unwrap().push(range.start);
            });
        });
        let order = order.into_inner().unwrap();
        assert_eq!(order, vec![0]);
    }

    #[test]
    fn concurrent_submitters_do_not_interfere() {
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let sum = AtomicUsize::new(0);
                    parallel_for(1000, 16, |range| {
                        sum.fetch_add(range.sum::<usize>(), Ordering::SeqCst);
                    });
                    assert_eq!(sum.load(Ordering::SeqCst), 1000 * 999 / 2);
                });
            }
        });
    }

    #[test]
    fn empty_range_is_a_no_op() {
        parallel_for(0, 8, |_| panic!("must not run"));
    }

    /// A panicking chunk must surface its original payload at the submitting
    /// call site and must not wedge the pool: pre-fix, the submitter raised a
    /// generic "a parallel chunk panicked" assert and every later lock on a
    /// poisoned mutex cascaded the failure into unrelated jobs.
    #[test]
    fn panicking_chunk_surfaces_payload_and_pool_survives() {
        // A private 2-thread pool forces the pooled (non-inline) path even
        // on single-core hosts and keeps panic fallout away from the global
        // pool other tests share.
        let pool = ThreadPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(64, 4, &|range: Range<usize>| {
                if range.contains(&17) {
                    panic!("boom-42");
                }
            });
        }));
        let payload = caught.expect_err("chunk panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .expect("payload must be the original panic message");
        assert_eq!(msg, "boom-42");
        // The same pool still runs jobs to completion afterwards.
        let sum = AtomicUsize::new(0);
        pool.scope(1000, 16, &|range: Range<usize>| {
            sum.fetch_add(range.sum::<usize>(), Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), 1000 * 999 / 2);
    }

    /// The inline path (serial config) must also deliver the original
    /// payload.
    #[test]
    fn inline_panic_keeps_original_payload() {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_serial(|| parallel_for(8, 2, |_| panic!("inline-boom")));
        }));
        let payload = caught.expect_err("panic must propagate");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"inline-boom"));
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
        assert!(num_threads() >= 1);
    }

    /// `shutdown` must complete in-flight work, join every worker, and be
    /// idempotent; afterwards submissions still run correctly (inline).
    #[test]
    fn shutdown_joins_workers_and_keeps_results_correct() {
        let pool = ThreadPool::new(3);
        let before = AtomicUsize::new(0);
        pool.scope(1000, 8, &|range: Range<usize>| {
            before.fetch_add(range.len(), Ordering::SeqCst);
        });
        assert_eq!(before.load(Ordering::SeqCst), 1000);
        assert!(!pool.is_shut_down());
        pool.shutdown();
        assert!(pool.is_shut_down());
        assert!(
            lock_unpoisoned(&pool.workers).is_empty(),
            "handles must be consumed by join"
        );
        // Same semantics after shutdown: every index visited exactly once.
        let after = AtomicUsize::new(0);
        pool.scope(1000, 8, &|range: Range<usize>| {
            after.fetch_add(range.len(), Ordering::SeqCst);
        });
        assert_eq!(after.load(Ordering::SeqCst), 1000);
        pool.shutdown(); // idempotent
    }

    /// A shutdown racing an active job must let the job finish: workers
    /// only exit at drained points and the submitter completes its own
    /// spans, so no chunk is ever abandoned.
    #[test]
    fn shutdown_during_active_job_drains_it() {
        let pool = Arc::new(ThreadPool::new(4));
        let visited = Arc::new(AtomicUsize::new(0));
        let submitter = {
            let pool = Arc::clone(&pool);
            let visited = Arc::clone(&visited);
            std::thread::spawn(move || {
                pool.scope(512, 2, &|range: Range<usize>| {
                    // Slow chunks so the shutdown lands mid-job.
                    std::thread::sleep(std::time::Duration::from_micros(50));
                    visited.fetch_add(range.len(), Ordering::SeqCst);
                });
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(1));
        pool.shutdown();
        submitter.join().expect("submitter");
        assert_eq!(visited.load(Ordering::SeqCst), 512);
    }

    #[test]
    fn shutdown_global_is_safe_to_call() {
        // Only exercises the entry point's plumbing on a private cell —
        // shutting the real global pool here would serialize the rest of
        // the in-process test suite.
        assert!(global_cell().get().is_some() || global_if_built().is_none());
    }
}
