//! Order statistics, histograms and error metrics.
//!
//! The progressive relaxation algorithm (paper Algorithm 2) is driven by
//! `Max` and `Quantile` of calibration tensors; the evaluation harness uses
//! MSE (Table 1) and cosine similarity (Fig. 7 attention fidelity).

use crate::{Tensor, TensorError};

/// The `q`-th quantile (0 ≤ q ≤ 1) of a sample, by linear interpolation
/// between closest ranks (the "linear" method of NumPy).
///
/// Non-finite samples (NaN, ±∞) are excluded before ranking: a NaN would
/// otherwise land at an arbitrary sort position (`partial_cmp` returns
/// `None`) and silently corrupt the PRA quantile sweep that feeds
/// calibration. The number of excluded samples is reported on the
/// `stats.nonfinite_dropped` counter when the metrics recorder is enabled.
///
/// Returns `None` for a sample with no finite values or a `q` outside
/// `[0, 1]`.
pub fn quantile(values: &[f32], q: f32) -> Option<f32> {
    if !(0.0..=1.0).contains(&q) || q.is_nan() {
        return None;
    }
    let mut sorted: Vec<f32> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let dropped = values.len() - sorted.len();
    if dropped > 0 {
        quq_obs::add("stats.nonfinite_dropped", dropped as u64);
    }
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(f32::total_cmp);
    let pos = q as f64 * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = (pos - lo as f64) as f32;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Mean squared error between two equally shaped tensors (paper Table 1).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
pub fn mse(a: &Tensor, b: &Tensor) -> crate::Result<f64> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            lhs: a.shape().to_vec(),
            rhs: b.shape().to_vec(),
        });
    }
    if a.is_empty() {
        return Ok(0.0);
    }
    let sum: f64 = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum();
    Ok(sum / a.len() as f64)
}

/// Cosine similarity between two equally shaped tensors, in `[-1, 1]`.
///
/// Returns 1 when both tensors are all-zero, 0 when exactly one is.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
pub fn cosine_similarity(a: &Tensor, b: &Tensor) -> crate::Result<f64> {
    if a.shape() != b.shape() {
        return Err(TensorError::ShapeMismatch {
            lhs: a.shape().to_vec(),
            rhs: b.shape().to_vec(),
        });
    }
    let mut dot = 0.0f64;
    let mut na = 0.0f64;
    let mut nb = 0.0f64;
    for (&x, &y) in a.data().iter().zip(b.data()) {
        dot += x as f64 * y as f64;
        na += x as f64 * x as f64;
        nb += y as f64 * y as f64;
    }
    if na == 0.0 && nb == 0.0 {
        return Ok(1.0);
    }
    if na == 0.0 || nb == 0.0 {
        return Ok(0.0);
    }
    Ok(dot / (na.sqrt() * nb.sqrt()))
}

/// A fixed-bin histogram over a closed interval, used to render the Fig. 3
/// distribution plots as text.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f32,
    hi: f32,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Builds a histogram of `values` with `bins` equal-width bins spanning
    /// `[lo, hi]`. Values outside the interval are clamped into the edge bins.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] when `bins == 0` or
    /// `lo >= hi`.
    pub fn new(values: &[f32], lo: f32, hi: f32, bins: usize) -> crate::Result<Self> {
        if bins == 0 {
            return Err(TensorError::InvalidArgument(
                "histogram needs at least one bin".to_string(),
            ));
        }
        // `partial_cmp` (not `lo >= hi`) so that NaN bounds are rejected too.
        if !matches!(lo.partial_cmp(&hi), Some(std::cmp::Ordering::Less)) {
            return Err(TensorError::InvalidArgument(format!(
                "invalid histogram range [{lo}, {hi}]"
            )));
        }
        let mut counts = vec![0u64; bins];
        let width = (hi - lo) / bins as f32;
        for &v in values {
            let idx = (((v - lo) / width) as isize).clamp(0, bins as isize - 1) as usize;
            counts[idx] += 1;
        }
        Ok(Self {
            lo,
            hi,
            counts,
            total: values.len() as u64,
        })
    }

    /// Lower edge of the range.
    pub fn lo(&self) -> f32 {
        self.lo
    }

    /// Upper edge of the range.
    pub fn hi(&self) -> f32 {
        self.hi
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn bin_center(&self, i: usize) -> f32 {
        assert!(i < self.counts.len());
        let width = (self.hi - self.lo) / self.counts.len() as f32;
        self.lo + width * (i as f32 + 0.5)
    }

    /// Renders a compact vertical-bar ASCII sketch of the distribution,
    /// `rows` characters tall, on a log-count scale (long-tailed data is
    /// invisible on a linear scale).
    pub fn render_ascii(&self, rows: usize) -> String {
        let max_log = self
            .counts
            .iter()
            .map(|&c| if c > 0 { ((c + 1) as f64).ln() } else { 0.0 })
            .fold(0.0f64, f64::max);
        let mut out = String::new();
        for r in (0..rows).rev() {
            let threshold = max_log * (r as f64 + 0.5) / rows as f64;
            for &c in &self.counts {
                let h = if c > 0 { ((c + 1) as f64).ln() } else { 0.0 };
                out.push(if h >= threshold && c > 0 { '█' } else { ' ' });
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_median_of_odd_sample() {
        let v = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&v, 0.5), Some(2.0));
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(3.0));
    }

    #[test]
    fn quantile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(quantile(&v, 0.25), Some(2.5));
    }

    #[test]
    fn quantile_edge_cases() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[1.0], 2.0), None);
        assert_eq!(quantile(&[1.0], -0.1), None);
        assert_eq!(quantile(&[5.0], 0.73), Some(5.0));
    }

    /// NaN-poisoned samples must rank as if the NaNs were absent: pre-fix,
    /// `partial_cmp(..).unwrap_or(Equal)` left NaNs at arbitrary positions,
    /// shifting every rank (the median below came out as 2.0 or NaN
    /// depending on input order).
    #[test]
    fn quantile_ignores_nonfinite_samples() {
        let clean = [1.0, 2.0, 3.0, 4.0, 5.0];
        let poisoned = [f32::NAN, 1.0, 2.0, f32::NAN, 3.0, 4.0, 5.0, f32::NAN];
        assert_eq!(quantile(&poisoned, 0.5), quantile(&clean, 0.5));
        assert_eq!(quantile(&poisoned, 0.5), Some(3.0));
        // Infinities are dropped too — PRA deltas must stay finite.
        let inf = [f32::NEG_INFINITY, 1.0, 3.0, f32::INFINITY];
        assert_eq!(quantile(&inf, 1.0), Some(3.0));
        assert_eq!(quantile(&inf, 0.0), Some(1.0));
        // All-non-finite behaves like an empty sample.
        assert_eq!(quantile(&[f32::NAN, f32::INFINITY], 0.5), None);
    }

    #[test]
    fn mse_of_identical_is_zero() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]).unwrap();
        assert_eq!(mse(&a, &a).unwrap(), 0.0);
    }

    #[test]
    fn mse_known_value() {
        let a = Tensor::from_vec(vec![0.0, 0.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert!((mse(&a, &b).unwrap() - 12.5).abs() < 1e-9);
        let c = Tensor::zeros(&[3]);
        assert!(mse(&a, &c).is_err());
    }

    #[test]
    fn cosine_similarity_basics() {
        let a = Tensor::from_vec(vec![1.0, 0.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![0.0, 1.0], &[2]).unwrap();
        assert!((cosine_similarity(&a, &a).unwrap() - 1.0).abs() < 1e-9);
        assert!(cosine_similarity(&a, &b).unwrap().abs() < 1e-9);
        let z = Tensor::zeros(&[2]);
        assert_eq!(cosine_similarity(&z, &z).unwrap(), 1.0);
        assert_eq!(cosine_similarity(&a, &z).unwrap(), 0.0);
    }

    #[test]
    fn histogram_counts_and_clamping() {
        let h = Histogram::new(&[-10.0, 0.1, 0.9, 10.0], 0.0, 1.0, 2).unwrap();
        assert_eq!(h.counts(), &[2, 2]); // -10 clamps into bin 0, 10 into bin 1
        assert_eq!(h.total(), 4);
        assert!((h.bin_center(0) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn histogram_rejects_bad_args() {
        assert!(Histogram::new(&[1.0], 0.0, 1.0, 0).is_err());
        assert!(Histogram::new(&[1.0], 1.0, 1.0, 4).is_err());
    }

    #[test]
    fn ascii_render_has_expected_rows() {
        let h = Histogram::new(&[0.1, 0.1, 0.9], 0.0, 1.0, 4).unwrap();
        let s = h.render_ascii(3);
        assert_eq!(s.lines().count(), 3);
    }
}
