//! Deterministic samplers for distribution-matched synthetic model data.
//!
//! The QUQ paper's central observation is that ViT tensors are *long-tailed*
//! and often *sign-asymmetric* (Fig. 3). To reproduce those shapes without
//! pretrained checkpoints, the ViT substrate draws weights from the families
//! here: Gaussian bulk, Laplace/Student-t tails, and outlier-channel mixtures.
//! All samplers take `&mut impl Rng` so experiments stay seed-reproducible.

use rand::Rng;

/// Draws a standard normal variate via the Box–Muller transform.
pub fn standard_normal(rng: &mut impl Rng) -> f32 {
    // Avoid ln(0) by sampling u1 from the half-open (0, 1].
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Draws from `N(mean, std²)`.
pub fn normal(rng: &mut impl Rng, mean: f32, std: f32) -> f32 {
    mean + std * standard_normal(rng)
}

/// Draws from a Laplace distribution with location `mu` and scale `b`
/// (heavier tails than a Gaussian; a good match for attention projections).
pub fn laplace(rng: &mut impl Rng, mu: f32, b: f32) -> f32 {
    let u: f32 = rng.gen::<f32>() - 0.5;
    mu - b * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

/// Draws from a Student-t distribution with `dof` degrees of freedom
/// (constructed as `Z / sqrt(χ²_dof / dof)`; small `dof` ⇒ heavy tails).
///
/// # Panics
///
/// Panics when `dof == 0`.
pub fn student_t(rng: &mut impl Rng, dof: u32) -> f32 {
    assert!(dof > 0, "student_t requires dof >= 1");
    let z = standard_normal(rng);
    let chi2: f32 = (0..dof)
        .map(|_| {
            let n = standard_normal(rng);
            n * n
        })
        .sum();
    z / (chi2 / dof as f32).sqrt()
}

/// Parameters of a two-component "bulk + outlier" Gaussian mixture, the
/// workhorse for long-tailed weight/activation synthesis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutlierMixture {
    /// Standard deviation of the bulk component.
    pub bulk_std: f32,
    /// Standard deviation of the outlier component (≫ `bulk_std`).
    pub outlier_std: f32,
    /// Probability that a sample comes from the outlier component.
    pub outlier_prob: f32,
    /// Constant shift applied to every sample (sign asymmetry knob).
    pub mean: f32,
}

impl OutlierMixture {
    /// A symmetric long-tailed mixture with the given bulk/outlier spread.
    pub fn new(bulk_std: f32, outlier_std: f32, outlier_prob: f32) -> Self {
        Self {
            bulk_std,
            outlier_std,
            outlier_prob,
            mean: 0.0,
        }
    }

    /// Returns a copy with the given mean shift.
    pub fn with_mean(mut self, mean: f32) -> Self {
        self.mean = mean;
        self
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> f32 {
        let std = if rng.gen::<f32>() < self.outlier_prob {
            self.outlier_std
        } else {
            self.bulk_std
        };
        self.mean + std * standard_normal(rng)
    }

    /// Fills a vector with `n` samples.
    pub fn sample_vec(&self, rng: &mut impl Rng, n: usize) -> Vec<f32> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_std(v: &[f32]) -> (f32, f32) {
        let m = v.iter().sum::<f32>() / v.len() as f32;
        let var = v.iter().map(|&x| (x - m) * (x - m)).sum::<f32>() / v.len() as f32;
        (m, var.sqrt())
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let v: Vec<f32> = (0..20_000).map(|_| standard_normal(&mut rng)).collect();
        let (m, s) = mean_std(&v);
        assert!(m.abs() < 0.03, "mean {m}");
        assert!((s - 1.0).abs() < 0.03, "std {s}");
    }

    #[test]
    fn normal_shifts_and_scales() {
        let mut rng = StdRng::seed_from_u64(2);
        let v: Vec<f32> = (0..20_000).map(|_| normal(&mut rng, 3.0, 0.5)).collect();
        let (m, s) = mean_std(&v);
        assert!((m - 3.0).abs() < 0.02);
        assert!((s - 0.5).abs() < 0.02);
    }

    #[test]
    fn laplace_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let b = 2.0;
        let v: Vec<f32> = (0..40_000).map(|_| laplace(&mut rng, 0.0, b)).collect();
        let (m, s) = mean_std(&v);
        assert!(m.abs() < 0.05, "mean {m}");
        // Laplace std = b·√2.
        assert!((s - b * std::f32::consts::SQRT_2).abs() < 0.1, "std {s}");
    }

    #[test]
    fn student_t_has_heavier_tails_than_normal() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 40_000;
        let t: Vec<f32> = (0..n).map(|_| student_t(&mut rng, 3)).collect();
        let g: Vec<f32> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let tail = |v: &[f32]| v.iter().filter(|&&x| x.abs() > 4.0).count();
        assert!(
            tail(&t) > tail(&g) * 3,
            "t tail {} vs normal tail {}",
            tail(&t),
            tail(&g)
        );
    }

    #[test]
    fn mixture_produces_outliers() {
        let mut rng = StdRng::seed_from_u64(5);
        let mix = OutlierMixture::new(0.02, 0.5, 0.01);
        let v = mix.sample_vec(&mut rng, 50_000);
        let big = v.iter().filter(|&&x| x.abs() > 0.2).count();
        // ~1% outliers with std 0.5: a meaningful fraction exceeds 0.2.
        assert!(big > 100, "only {big} outliers");
        // Bulk stays tight: the 90th percentile of |x| is small.
        let mut absx: Vec<f32> = v.iter().map(|x| x.abs()).collect();
        absx.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(absx[(0.9 * v.len() as f32) as usize] < 0.1);
    }

    #[test]
    fn mixture_mean_shift() {
        let mut rng = StdRng::seed_from_u64(6);
        let mix = OutlierMixture::new(0.1, 0.1, 0.0).with_mean(2.0);
        let v = mix.sample_vec(&mut rng, 10_000);
        let (m, _) = mean_std(&v);
        assert!((m - 2.0).abs() < 0.01);
    }

    #[test]
    fn samplers_are_deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }
}
