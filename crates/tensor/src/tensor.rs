//! Dense row-major `f32` tensor.

use std::fmt;

/// Error raised by tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements does not match the product of the dimensions.
    ShapeDataMismatch {
        /// Requested shape.
        shape: Vec<usize>,
        /// Number of elements supplied.
        len: usize,
    },
    /// Two tensors that must agree in shape do not.
    ShapeMismatch {
        /// Left-hand shape.
        lhs: Vec<usize>,
        /// Right-hand shape.
        rhs: Vec<usize>,
    },
    /// The operation requires a tensor of a particular rank.
    RankMismatch {
        /// Expected rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
    },
    /// Inner dimensions of a matrix product do not agree.
    InnerDimMismatch {
        /// Columns of the left operand.
        lhs_cols: usize,
        /// Rows of the right operand.
        rhs_rows: usize,
    },
    /// An axis index was out of range for the tensor's rank.
    AxisOutOfRange {
        /// Requested axis.
        axis: usize,
        /// Tensor rank.
        rank: usize,
    },
    /// Generic invalid-argument error with a human-readable message.
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { shape, len } => {
                write!(
                    f,
                    "shape {shape:?} requires {} elements, got {len}",
                    shape.iter().product::<usize>()
                )
            }
            TensorError::ShapeMismatch { lhs, rhs } => {
                write!(f, "shape mismatch: {lhs:?} vs {rhs:?}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "expected rank {expected}, got rank {actual}")
            }
            TensorError::InnerDimMismatch { lhs_cols, rhs_rows } => {
                write!(f, "inner dimensions do not agree: {lhs_cols} vs {rhs_rows}")
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::InvalidArgument(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

/// A dense, row-major tensor of `f32` values.
///
/// Shapes are owned `Vec<usize>`; an empty shape denotes a scalar holding one
/// element. All arithmetic is checked: dimension disagreements surface as
/// [`TensorError`] rather than panics, except for indexing, which panics like
/// slice indexing does.
///
/// ```
/// use quq_tensor::Tensor;
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from raw data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] when `data.len()` does not
    /// equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> crate::Result<Self> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(TensorError::ShapeDataMismatch {
                shape: shape.to_vec(),
                len: data.len(),
            });
        }
        Ok(Self {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Creates a zero-filled tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let len = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![value; len],
        }
    }

    /// Creates an `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Self {
            shape: Vec::new(),
            data: vec![value],
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The tensor's rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing buffer (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics when `index` has the wrong rank or is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.offset(index)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics when `index` has the wrong rank or is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.offset(index);
        self.data[off] = value;
    }

    fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.shape.len(),
            "index rank {} != tensor rank {}",
            index.len(),
            self.shape.len()
        );
        let mut off = 0;
        for (i, (&ix, &dim)) in index.iter().zip(&self.shape).enumerate() {
            assert!(
                ix < dim,
                "index {ix} out of bounds for axis {i} with size {dim}"
            );
            off = off * dim + ix;
        }
        off
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] when element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> crate::Result<Self> {
        Self::from_vec(self.data.clone(), shape)
    }

    /// Consuming variant of [`reshape`](Self::reshape); avoids the copy.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] when element counts differ.
    pub fn into_reshape(self, shape: &[usize]) -> crate::Result<Self> {
        Self::from_vec(self.data, shape)
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise combination of two equally shaped tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn zip_with(&self, other: &Self, f: impl Fn(f32, f32) -> f32) -> crate::Result<Self> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Self {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Elementwise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn add(&self, other: &Self) -> crate::Result<Self> {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn sub(&self, other: &Self) -> crate::Result<Self> {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise product (Hadamard).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn mul(&self, other: &Self) -> crate::Result<Self> {
        self.zip_with(other, |a, b| a * b)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// Adds a 1-D bias over the last axis (broadcast over leading axes).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `bias.len()` differs from
    /// the size of the last axis.
    pub fn add_bias(&self, bias: &Self) -> crate::Result<Self> {
        let last = *self.shape.last().ok_or_else(|| {
            TensorError::InvalidArgument("add_bias requires rank >= 1".to_string())
        })?;
        if bias.rank() != 1 || bias.len() != last {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.clone(),
                rhs: bias.shape.clone(),
            });
        }
        let mut out = self.clone();
        for row in out.data.chunks_mut(last) {
            for (x, &b) in row.iter_mut().zip(&bias.data) {
                *x += b;
            }
        }
        Ok(out)
    }

    /// Views the tensor as a matrix by flattening all leading axes.
    ///
    /// A `[b, n, d]` tensor becomes `[b * n, d]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for tensors of rank < 1.
    pub fn as_matrix(&self) -> crate::Result<(usize, usize)> {
        if self.shape.is_empty() {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: 0,
            });
        }
        let cols = *self.shape.last().expect("non-empty shape");
        let rows = self.len() / cols.max(1);
        Ok((rows, cols))
    }

    /// Returns the `i`-th slice along the leading axis as a new tensor.
    ///
    /// A `[b, n, d]` tensor yields `[n, d]` slices.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is rank 0 or `i` is out of range.
    pub fn index_axis0(&self, i: usize) -> Self {
        assert!(!self.shape.is_empty(), "cannot slice a scalar");
        assert!(
            i < self.shape[0],
            "index {i} out of range for axis 0 with size {}",
            self.shape[0]
        );
        let sub_shape: Vec<usize> = self.shape[1..].to_vec();
        let sub_len: usize = sub_shape.iter().product();
        let data = self.data[i * sub_len..(i + 1) * sub_len].to_vec();
        Self {
            shape: sub_shape,
            data,
        }
    }

    /// Stacks equally shaped tensors along a new leading axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for an empty input and
    /// [`TensorError::ShapeMismatch`] when shapes disagree.
    pub fn stack(parts: &[Self]) -> crate::Result<Self> {
        let first = parts.first().ok_or_else(|| {
            TensorError::InvalidArgument("stack requires at least one tensor".to_string())
        })?;
        let mut data = Vec::with_capacity(first.len() * parts.len());
        for p in parts {
            if p.shape != first.shape {
                return Err(TensorError::ShapeMismatch {
                    lhs: first.shape.clone(),
                    rhs: p.shape.clone(),
                });
            }
            data.extend_from_slice(&p.data);
        }
        let mut shape = vec![parts.len()];
        shape.extend_from_slice(&first.shape);
        Ok(Self { shape, data })
    }

    /// Concatenates tensors along the last axis.
    ///
    /// All inputs must agree in every axis except the last.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for an empty input and
    /// [`TensorError::ShapeMismatch`] when leading shapes disagree.
    pub fn concat_last(parts: &[Self]) -> crate::Result<Self> {
        let first = parts.first().ok_or_else(|| {
            TensorError::InvalidArgument("concat_last requires at least one tensor".to_string())
        })?;
        if first.shape.is_empty() {
            return Err(TensorError::RankMismatch {
                expected: 1,
                actual: 0,
            });
        }
        let lead = &first.shape[..first.shape.len() - 1];
        let rows: usize = lead.iter().product();
        let mut total_last = 0;
        for p in parts {
            if p.shape.len() != first.shape.len() || &p.shape[..p.shape.len() - 1] != lead {
                return Err(TensorError::ShapeMismatch {
                    lhs: first.shape.clone(),
                    rhs: p.shape.clone(),
                });
            }
            total_last += *p.shape.last().expect("non-empty shape");
        }
        let mut data = Vec::with_capacity(rows * total_last);
        for r in 0..rows {
            for p in parts {
                let last = *p.shape.last().expect("non-empty shape");
                data.extend_from_slice(&p.data[r * last..(r + 1) * last]);
            }
        }
        let mut shape = lead.to_vec();
        shape.push(total_last);
        Ok(Self { shape, data })
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for tensors that are not rank 2.
    pub fn transpose(&self) -> crate::Result<Self> {
        if self.rank() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.rank(),
            });
        }
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = Self::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(out)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Minimum element (`+inf` for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Maximum element (`-inf` for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the maximum element of a rank-1 tensor (ties -> first).
    ///
    /// # Panics
    ///
    /// Panics when the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        for (i, &x) in self.data.iter().enumerate() {
            if x > self.data[best] {
                best = i;
            }
        }
        best
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Self::zeros(&[0])
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}(", self.shape)?;
        let preview: Vec<String> = self
            .data
            .iter()
            .take(8)
            .map(|x| format!("{x:.4}"))
            .collect();
        write!(f, "{}", preview.join(", "))?;
        if self.data.len() > 8 {
            write!(f, ", …")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_len() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        let err = Tensor::from_vec(vec![1.0; 5], &[2, 3]).unwrap_err();
        assert!(matches!(err, TensorError::ShapeDataMismatch { .. }));
    }

    #[test]
    fn indexing_round_trips() {
        let mut t = Tensor::zeros(&[2, 3, 4]);
        t.set(&[1, 2, 3], 7.5);
        assert_eq!(t.at(&[1, 2, 3]), 7.5);
        assert_eq!(t.at(&[0, 0, 0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn indexing_out_of_bounds_panics() {
        let t = Tensor::zeros(&[2, 2]);
        let _ = t.at(&[2, 0]);
    }

    #[test]
    fn eye_is_identity_under_matmul() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let i = Tensor::eye(2);
        let prod = crate::linalg::matmul(&a, &i).unwrap();
        assert_eq!(prod.data(), a.data());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]).unwrap();
        let r = t.reshape(&[2, 6]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[5, 5]).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
        let c = Tensor::zeros(&[3]);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn add_bias_broadcasts_over_rows() {
        let x = Tensor::from_vec(vec![0.0, 0.0, 1.0, 1.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        let y = x.add_bias(&b).unwrap();
        assert_eq!(y.data(), &[10.0, 20.0, 11.0, 21.0]);
    }

    #[test]
    fn stack_and_index_axis0_round_trip() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        let s = Tensor::stack(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.index_axis0(0), a);
        assert_eq!(s.index_axis0(1), b);
    }

    #[test]
    fn concat_last_interleaves_rows() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let b = Tensor::from_vec(vec![9.0, 8.0], &[2, 1]).unwrap();
        let c = Tensor::concat_last(&[a, b]).unwrap();
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.data(), &[1.0, 2.0, 9.0, 3.0, 4.0, 8.0]);
    }

    #[test]
    fn transpose_is_involution() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let tt = t.transpose().unwrap().transpose().unwrap();
        assert_eq!(t, tt);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![-1.0, 4.0, 2.0], &[3]).unwrap();
        assert_eq!(t.sum(), 5.0);
        assert!((t.mean() - 5.0 / 3.0).abs() < 1e-6);
        assert_eq!(t.min(), -1.0);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn display_is_nonempty() {
        let t = Tensor::zeros(&[1]);
        assert!(!format!("{t}").is_empty());
        assert!(!format!("{t:?}").is_empty());
    }
}
