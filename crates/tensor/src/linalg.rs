//! Matrix products: the GEMM core that all "green" (quantizable) operations
//! of the paper's Fig. 1 reduce to.
//!
//! The kernels are cache-blocked and row-parallel on the [`crate::pool`]
//! work-stealing pool. Output rows are independent and every output element
//! accumulates its `k` products in ascending-index order regardless of how
//! rows are chunked across threads, so results are **bit-identical at every
//! thread count** (including the `QUQ_THREADS=1` serial reference).

pub mod isa;

use crate::{pool, tune, IntTensor, Tensor, TensorError};
use std::cell::Cell;

/// Rows of `B` (the shared operand) processed per pass so the active block
/// stays cache-resident while a chunk of output rows streams over it.
const KC: usize = 128;

/// Output columns accumulated together in `matmul_nt`'s inner kernel: four
/// dot products share one pass over the `A` row.
const JB: usize = 4;

/// Rows of output per work-stealing chunk. Small enough to balance the
/// pool on ViT-sized matrices (a few hundred rows), large enough that a
/// chunk amortizes its claim.
const ROW_GRAIN: usize = 8;

fn check_rank2(t: &Tensor) -> crate::Result<()> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.rank(),
        });
    }
    Ok(())
}

/// Multiplies two rank-2 tensors: `C[m,n] = A[m,k] · B[k,n]`.
///
/// Row-parallel i-k-j kernel with `k` blocked in [`KC`]-row panels of `B`:
/// each panel is reused across every output row of a chunk while the inner
/// loop streams both operands contiguously. Zero entries of `A` are *not*
/// skipped — `0 × NaN` and `0 × ∞` must propagate into the product exactly
/// as IEEE 754 defines them.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] when either input is not rank 2 and
/// [`TensorError::InnerDimMismatch`] when `A`'s columns differ from `B`'s rows.
pub fn matmul(a: &Tensor, b: &Tensor) -> crate::Result<Tensor> {
    check_rank2(a)?;
    check_rank2(b)?;
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    if k != k2 {
        return Err(TensorError::InnerDimMismatch {
            lhs_cols: k,
            rhs_rows: k2,
        });
    }
    let _span = quq_obs::span("gemm.matmul");
    record_gemm_work(m, k, n, 4, 4);
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    if n > 0 {
        pool::parallel_rows_mut(&mut out, n, ROW_GRAIN, |first_row, block| {
            matmul_block(ad, bd, block, first_row, k, n);
        });
    }
    Tensor::from_vec(out, &[m, n])
}

/// Reports one GEMM's arithmetic intensity on the global recorder:
/// `gemm.macs` counts `m·k·n` multiply-accumulates, `gemm.bytes` the
/// compulsory operand + output traffic (each matrix touched once).
#[inline]
fn record_gemm_work(m: usize, k: usize, n: usize, in_bytes: usize, out_bytes: usize) {
    if quq_obs::enabled() {
        quq_obs::add("gemm.macs", (m * k * n) as u64);
        quq_obs::add(
            "gemm.bytes",
            ((m * k + k * n) * in_bytes + m * n * out_bytes) as u64,
        );
    }
}

/// Computes a block of output rows of `A·B` starting at `first_row`.
///
/// Accumulation into each element runs over `p = 0..k` ascending (panels
/// ascend, `p` ascends within a panel), independent of the block split.
fn matmul_block(ad: &[f32], bd: &[f32], block: &mut [f32], first_row: usize, k: usize, n: usize) {
    for panel_start in (0..k).step_by(KC) {
        let panel_end = (panel_start + KC).min(k);
        for (r, orow) in block.chunks_exact_mut(n).enumerate() {
            let arow = &ad[(first_row + r) * k..(first_row + r + 1) * k];
            for p in panel_start..panel_end {
                let av = arow[p];
                let brow = &bd[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    }
}

/// Multiplies `A[m,k]` by the transpose of `B[n,k]`: `C[m,n] = A · Bᵀ`.
///
/// Attention scores `Q·Kᵀ` use this directly so `K` never needs an explicit
/// transpose copy. Row-parallel dot-product kernel computing [`JB`] output
/// columns per pass over the `A` row (one load of `A` feeds four
/// independent accumulators).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or [`TensorError::InnerDimMismatch`]
/// as for [`matmul`].
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> crate::Result<Tensor> {
    check_rank2(a)?;
    check_rank2(b)?;
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (n, k2) = (b.shape()[0], b.shape()[1]);
    if k != k2 {
        return Err(TensorError::InnerDimMismatch {
            lhs_cols: k,
            rhs_rows: k2,
        });
    }
    let _span = quq_obs::span("gemm.matmul_nt");
    record_gemm_work(m, k, n, 4, 4);
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    if n > 0 {
        pool::parallel_rows_mut(&mut out, n, ROW_GRAIN, |first_row, block| {
            matmul_nt_block(ad, bd, block, first_row, k, n);
        });
    }
    Tensor::from_vec(out, &[m, n])
}

/// Computes a block of output rows of `A·Bᵀ` starting at `first_row`.
///
/// Each output element is an independent ascending-`k` dot product, so the
/// [`JB`]-wide column tiling never reorders any element's accumulation.
fn matmul_nt_block(
    ad: &[f32],
    bd: &[f32],
    block: &mut [f32],
    first_row: usize,
    k: usize,
    n: usize,
) {
    for (r, orow) in block.chunks_exact_mut(n).enumerate() {
        let arow = &ad[(first_row + r) * k..(first_row + r + 1) * k];
        let mut j = 0;
        while j + JB <= n {
            let b0 = &bd[j * k..(j + 1) * k];
            let b1 = &bd[(j + 1) * k..(j + 2) * k];
            let b2 = &bd[(j + 2) * k..(j + 3) * k];
            let b3 = &bd[(j + 3) * k..(j + 4) * k];
            let (mut a0, mut a1, mut a2, mut a3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for p in 0..k {
                let x = arow[p];
                a0 += x * b0[p];
                a1 += x * b1[p];
                a2 += x * b2[p];
                a3 += x * b3[p];
            }
            orow[j] = a0;
            orow[j + 1] = a1;
            orow[j + 2] = a2;
            orow[j + 3] = a3;
            j += JB;
        }
        while j < n {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            orow[j] = acc;
            j += 1;
        }
    }
}

/// Applies a linear layer `y = x·Wᵀ + bias` where `x` is `[..., in]` and `w`
/// is `[out, in]` (PyTorch weight layout, which the ViT substrate mirrors).
///
/// # Errors
///
/// Returns a shape error when the trailing dimension of `x` differs from
/// `w.shape()[1]` or when `bias` (if present) has length ≠ `w.shape()[0]`.
pub fn linear(x: &Tensor, w: &Tensor, bias: Option<&Tensor>) -> crate::Result<Tensor> {
    let (rows, cols) = x.as_matrix()?;
    let x2 = x.reshape(&[rows, cols])?;
    let y = matmul_nt(&x2, w)?;
    let y = match bias {
        Some(b) => y.add_bias(b)?,
        None => y,
    };
    let mut shape = x.shape().to_vec();
    *shape.last_mut().expect("rank >= 1") = w.shape()[0];
    y.into_reshape(&shape)
}

/// Integer matrix product with 32-bit accumulation: `C[m,n] = A[m,k] · B[k,n]`.
///
/// This models the PE-array accumulation path of the paper's accelerator:
/// products of b-bit codes accumulated in wide integers (Eq. 2 before the
/// requantization scale). Row-parallel like [`matmul`]; the zero-skip is
/// kept here because integer `0 × b` contributes exactly nothing.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or [`TensorError::InnerDimMismatch`]
/// as for [`matmul`].
pub fn int_matmul(a: &IntTensor, b: &IntTensor) -> crate::Result<IntTensor> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: a.rank(),
        });
    }
    if b.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: b.rank(),
        });
    }
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    if k != k2 {
        return Err(TensorError::InnerDimMismatch {
            lhs_cols: k,
            rhs_rows: k2,
        });
    }
    let _span = quq_obs::span("gemm.int_matmul");
    record_gemm_work(m, k, n, 4, 4);
    let mut out = vec![0i32; m * n];
    let ad = a.data();
    let bd = b.data();
    if n > 0 {
        pool::parallel_rows_mut(&mut out, n, ROW_GRAIN, |first_row, block| {
            for (r, orow) in block.chunks_exact_mut(n).enumerate() {
                let i = first_row + r;
                for p in 0..k {
                    let av = ad[i * k + p];
                    if av == 0 {
                        continue;
                    }
                    let brow = &bd[p * n..(p + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o = o.wrapping_add(av.wrapping_mul(bv));
                    }
                }
            }
        });
    }
    IntTensor::from_vec(out, &[m, n])
}

/// Integer matrix product over *pre-shifted packed panels*:
/// `C[m,n] = A[m,k] · B[n,k]ᵀ` with `i64` accumulators.
///
/// `a` and `b` hold pre-shifted decoded QUB values (`D << n_sh`, each
/// fitting an `i16` for b ≤ 8), so the inner loop is a dense widening
/// multiply-accumulate with no per-element shift — the software analogue of
/// the paper's PE array consuming decoding-unit output. The kernel is
/// cache-blocked in [`KC`]-element panels of `k` and computes [`JB`] output
/// columns per pass over an `A` row (four independent accumulators share
/// one load of `A`). Output rows are partitioned disjointly across the
/// [`crate::pool`]; integer accumulation is exact, so results are
/// bit-identical at every thread count and blocking order.
///
/// Magnitude bound on packed-panel entries: `|D << n_sh| ≤ 2^7 · 2^7`
/// for b ≤ 8 (payload fits b−1 ≤ 7 bits, `n_sh` fits 3 bits). The
/// kernels under [`isa`] rely on it: any two products fit 2^29 (so
/// `pmaddwd`/`vpdpwssd` pair sums are exact), any two pair sums fit
/// 2^30 (so a two-step `i32` fold is exact), and any four-product
/// partial sum fits 2^30 (so the scalar `i32` chunks never wrap).
pub const PANEL_BOUND: i32 = 1 << 14;

/// Panel stride alignment (in `i16` elements) that makes the SIMD main
/// loops tail-free: the widest kernel consumes 32 lanes per step, so
/// panels whose row stride is a multiple of this (zero-padded — zeros
/// contribute exactly nothing) never touch a remainder path in steady
/// state. `QubTensor::preshifted` pads its rank-2 panels to this.
pub const PANEL_K_ALIGN: usize = 32;

thread_local! {
    /// Rows of a single logical image inside a stacked `forward_batch`
    /// activation, or 0 outside a batched forward. Set on the thread
    /// that *launches* matmuls (pool workers never consult it).
    static BATCH_IMAGE_ROWS: Cell<usize> = const { Cell::new(0) };
}

/// Marks the current thread as running a stacked batched forward whose
/// per-image activations are `image_rows` tall, until the guard drops.
/// While active, the packed GEMM enlarges its parallel row grain so a
/// decoded weight panel streams over whole images instead of being
/// re-fetched every [`ROW_GRAIN`] rows.
pub fn batch_rows_hint(image_rows: usize) -> BatchRowsGuard {
    let prev = BATCH_IMAGE_ROWS.with(|c| c.replace(image_rows));
    BatchRowsGuard { prev }
}

/// RAII guard restoring the previous batch-rows hint on drop.
pub struct BatchRowsGuard {
    prev: usize,
}

impl Drop for BatchRowsGuard {
    fn drop(&mut self) {
        BATCH_IMAGE_ROWS.with(|c| c.set(self.prev));
    }
}

/// Row grain for the packed GEMM's pool split. Outside a batched
/// forward this is the classic [`ROW_GRAIN`]; inside one, chunks grow
/// to image-sized multiples (bounded so every pool thread still gets
/// work), which keeps each decoded `B` panel resident across the
/// stacked rows of an image instead of re-streaming `B` per 8-row
/// chunk. Grain only changes how rows are *grouped* — per-element
/// accumulation order is untouched, so results stay bit-identical.
fn packed_row_grain(m: usize) -> usize {
    let image_rows = BATCH_IMAGE_ROWS.with(|c| c.get());
    if image_rows <= ROW_GRAIN || m <= image_rows {
        return ROW_GRAIN;
    }
    let threads = pool::num_threads().max(1);
    // At most one image per chunk, at least two chunks per thread.
    image_rows.min(m.div_ceil(2 * threads)).max(ROW_GRAIN)
}

/// # Preconditions
///
/// Every element of `a` and `b` must satisfy `|v| ≤` [`PANEL_BOUND`]
/// (guaranteed by the QUB pre-shift decode for b ≤ 8; checked by a
/// `debug_assert!`). Larger magnitudes can overflow the `i32` partial
/// sums the blocked kernels use.
///
/// # Panics
///
/// Panics when `a.len() != m·k` or `b.len() != n·k`.
pub fn i16_matmul_nt_i64(a: &[i16], b: &[i16], m: usize, k: usize, n: usize) -> Vec<i64> {
    i16_matmul_nt_i64_hinted(a, b, m, k, n, 0)
}

/// [`i16_matmul_nt_i64`] with a QUB bit-width hint that keys the tile
/// autotuner (`bits = 0` when unknown). The hint never affects values —
/// only which memoized tile shape the search space resolves to.
///
/// Dispatch happens here, once per call: the ISA comes from
/// [`isa::resolve`] (best supported, or `QUQ_FORCE_ISA`), the tile from
/// [`crate::tune::tile_for`] (memoized per shape, `QUQ_TUNE` to
/// control), and pool workers receive the resolved kernel as a plain
/// fn pointer. Every ISA × tile combination accumulates exactly in
/// `i64`, so output bytes are identical regardless of host, override,
/// tile shape, or thread count.
pub fn i16_matmul_nt_i64_hinted(
    a: &[i16],
    b: &[i16],
    m: usize,
    k: usize,
    n: usize,
    bits: u32,
) -> Vec<i64> {
    assert_eq!(a.len(), m * k, "lhs panel must be m·k elements");
    assert_eq!(b.len(), n * k, "rhs panel must be n·k elements");
    debug_assert!(
        a.iter()
            .chain(b.iter())
            .all(|&v| (v as i32).abs() <= PANEL_BOUND),
        "panel values must satisfy |v| ≤ 2^14 (the pre-shifted QUB bound)"
    );
    let _span = quq_obs::span("gemm.i16_nt");
    record_gemm_work(m, k, n, 2, 8);
    let mut out = vec![0i64; m * n];
    if m == 0 || n == 0 {
        return out;
    }
    let which = isa::resolve();
    let tile = tune::tile_for(a, b, m, k, n, bits, which);
    let kern = isa::block_fn(which, tile.mr, tile.jb)
        .expect("tuner and defaults only propose lattice tiles");
    let grain = packed_row_grain(m);
    pool::parallel_rows_mut(&mut out, n, grain, move |first_row, block| {
        kern(a, b, block, first_row, k, n, tile.kc);
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::standard_normal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    fn random(shape: &[usize], seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let len: usize = shape.iter().product();
        Tensor::from_vec((0..len).map(|_| standard_normal(&mut rng)).collect(), shape).unwrap()
    }

    #[test]
    fn matmul_small_known_answer() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = t(&[1.0, 2.0], &[1, 2]);
        let b = t(&[1.0, 2.0, 3.0], &[3, 1]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::InnerDimMismatch { .. })
        ));
        let v = t(&[1.0], &[1]);
        assert!(matches!(
            matmul(&v, &a),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 1.0, 2.0, 3.0], &[2, 3]);
        let via_nt = matmul_nt(&a, &b).unwrap();
        let via_t = matmul(&a, &b.transpose().unwrap()).unwrap();
        // Different kernels, so compare numerically rather than bitwise.
        for (x, y) in via_nt.data().iter().zip(via_t.data()) {
            assert!((x - y).abs() <= 1e-4 * x.abs().max(1.0));
        }
    }

    #[test]
    fn matmul_propagates_nan_and_inf_through_zero_rows() {
        // A zero entry of `A` must not short-circuit a NaN/∞ in `B`:
        // IEEE 754 says 0 × NaN = NaN and 0 × ∞ = NaN.
        let a = t(&[0.0, 1.0], &[1, 2]);
        let b = t(&[f32::NAN, 0.0, f32::INFINITY, 2.0], &[2, 2]);
        let c = matmul(&a, &b).unwrap();
        assert!(c.data()[0].is_nan(), "0·NaN + 1·∞ must not be finite");
        assert_eq!(c.data()[1], 2.0);
    }

    #[test]
    fn parallel_and_serial_matmul_are_bit_identical() {
        // Sizes straddle the KC panel and ROW_GRAIN chunk boundaries.
        for (m, k, n, seed) in [(3, 5, 4, 1), (17, 130, 9, 2), (64, 300, 33, 3)] {
            let a = random(&[m, k], seed);
            let b = random(&[k, n], seed + 100);
            let bt = random(&[n, k], seed + 200);
            let par = matmul(&a, &b).unwrap();
            let par_nt = matmul_nt(&a, &bt).unwrap();
            let (ser, ser_nt) =
                pool::run_serial(|| (matmul(&a, &b).unwrap(), matmul_nt(&a, &bt).unwrap()));
            assert_eq!(par.data(), ser.data(), "matmul {m}x{k}x{n} diverged");
            assert_eq!(
                par_nt.data(),
                ser_nt.data(),
                "matmul_nt {m}x{k}x{n} diverged"
            );
        }
    }

    #[test]
    fn linear_matches_manual_gemm() {
        // x: [2, 3], w: [4, 3] (out=4, in=3)
        let x = t(&[1.0, 0.0, -1.0, 2.0, 2.0, 2.0], &[2, 3]);
        let w = t(
            &(0..12).map(|i| i as f32 * 0.1).collect::<Vec<_>>(),
            &[4, 3],
        );
        let b = t(&[1.0, 1.0, 1.0, 1.0], &[4]);
        let y = linear(&x, &w, Some(&b)).unwrap();
        assert_eq!(y.shape(), &[2, 4]);
        // First row, first output: 1*0 + 0*0.1 + (-1)*0.2 + 1 = 0.8
        assert!((y.at(&[0, 0]) - 0.8).abs() < 1e-6);
    }

    #[test]
    fn linear_preserves_leading_axes() {
        let x = Tensor::zeros(&[2, 5, 3]);
        let w = Tensor::zeros(&[4, 3]);
        let y = linear(&x, &w, None).unwrap();
        assert_eq!(y.shape(), &[2, 5, 4]);
    }

    #[test]
    fn i16_matmul_nt_matches_naive_dot() {
        let mut rng = StdRng::seed_from_u64(7);
        // Sizes straddle the KC panel and JB tile boundaries.
        for (m, k, n) in [(1, 1, 1), (3, 5, 4), (9, 130, 7), (16, 300, 13)] {
            let a: Vec<i16> = (0..m * k)
                .map(|_| (standard_normal(&mut rng) * 1000.0) as i16)
                .collect();
            let b: Vec<i16> = (0..n * k)
                .map(|_| (standard_normal(&mut rng) * 1000.0) as i16)
                .collect();
            let c = i16_matmul_nt_i64(&a, &b, m, k, n);
            for i in 0..m {
                for j in 0..n {
                    let expect: i64 = (0..k)
                        .map(|p| a[i * k + p] as i64 * b[j * k + p] as i64)
                        .sum();
                    assert_eq!(c[i * n + j], expect, "({m},{k},{n}) at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn i16_matmul_nt_parallel_equals_serial() {
        let mut rng = StdRng::seed_from_u64(11);
        let (m, k, n) = (33, 150, 21);
        let a: Vec<i16> = (0..m * k)
            .map(|_| (standard_normal(&mut rng) * 500.0) as i16)
            .collect();
        let b: Vec<i16> = (0..n * k)
            .map(|_| (standard_normal(&mut rng) * 500.0) as i16)
            .collect();
        let par = i16_matmul_nt_i64(&a, &b, m, k, n);
        let ser = pool::run_serial(|| i16_matmul_nt_i64(&a, &b, m, k, n));
        assert_eq!(par, ser);
    }

    #[test]
    fn i16_matmul_nt_empty_shapes() {
        assert!(i16_matmul_nt_i64(&[], &[1, 2], 0, 2, 1).is_empty());
        assert!(i16_matmul_nt_i64(&[1, 2], &[], 1, 2, 0).is_empty());
        // k = 0: well-defined all-zero output.
        assert_eq!(i16_matmul_nt_i64(&[], &[], 2, 0, 3), vec![0i64; 6]);
    }

    #[test]
    fn i16_matmul_nt_extreme_values_do_not_overflow() {
        // Saturate the panel contract: every entry at ±PANEL_BOUND with a
        // deep reduction, so pmaddwd pair sums hit 2^29 and the scalar
        // four-product chunks hit 2^30 — the worst cases both kernels
        // must survive exactly.
        let k = 4096;
        let hi = PANEL_BOUND as i16;
        let a = vec![-hi; k];
        let b = vec![-hi; k];
        let c = i16_matmul_nt_i64(&a, &b, 1, k, 1);
        assert_eq!(c[0], (hi as i64 * hi as i64) * k as i64);
        let mixed: Vec<i16> = (0..k).map(|i| if i % 2 == 0 { hi } else { -hi }).collect();
        let c2 = i16_matmul_nt_i64(&mixed, &b, 1, k, 1);
        assert_eq!(c2[0], 0);
    }

    #[test]
    fn every_isa_and_tile_shape_matches_naive_dot_bitwise() {
        // The full kernel matrix: every supported ISA × every lattice
        // (MR, JB) × panel depths straddling k must produce the naive
        // dot product's exact bytes — SIMD remainders (k not a multiple
        // of the step), row tails (m % MR ≠ 0), and column tails
        // (n % JB ≠ 0) included.
        let mut rng = StdRng::seed_from_u64(9);
        for (m, k, n) in [(1, 1, 1), (3, 17, 5), (5, 129, 9), (7, 67, 13)] {
            let sample = |len: usize, rng: &mut StdRng| -> Vec<i16> {
                (0..len)
                    .map(|_| (standard_normal(rng) * 8000.0).clamp(-16384.0, 16384.0) as i16)
                    .collect()
            };
            let a = sample(m * k, &mut rng);
            let b = sample(n * k, &mut rng);
            let mut want = vec![0i64; m * n];
            for i in 0..m {
                for j in 0..n {
                    want[i * n + j] = (0..k)
                        .map(|p| a[i * k + p] as i64 * b[j * k + p] as i64)
                        .sum();
                }
            }
            for &which in isa::supported() {
                for mr in [1, 2, 4] {
                    for jb in [2, 4, 8] {
                        for kc in [1, 4, 32, 128, 4096] {
                            let kern = isa::block_fn(which, mr, jb).unwrap();
                            let mut got = vec![0i64; m * n];
                            kern(&a, &b, &mut got, 0, k, n, kc);
                            assert_eq!(
                                got,
                                want,
                                "{} mr={mr} jb={jb} kc={kc} diverged at {m}x{k}x{n}",
                                which.name()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn public_entry_honors_forced_scalar_isa() {
        // `QUQ_FORCE_ISA` must reach the dispatch and stay bit-identical.
        // (Scalar is the one ISA every host supports.)
        let mut rng = StdRng::seed_from_u64(21);
        let (m, k, n) = (6, 50, 9);
        let a: Vec<i16> = (0..m * k)
            .map(|_| (standard_normal(&mut rng) * 1000.0) as i16)
            .collect();
        let b: Vec<i16> = (0..n * k)
            .map(|_| (standard_normal(&mut rng) * 1000.0) as i16)
            .collect();
        let native = i16_matmul_nt_i64(&a, &b, m, k, n);
        std::env::set_var("QUQ_FORCE_ISA", "scalar");
        let forced = i16_matmul_nt_i64(&a, &b, m, k, n);
        std::env::remove_var("QUQ_FORCE_ISA");
        assert_eq!(native, forced);
    }

    #[test]
    fn batch_rows_hint_is_bit_neutral_and_scoped() {
        let mut rng = StdRng::seed_from_u64(31);
        let (m, k, n) = (40, 33, 7);
        let a: Vec<i16> = (0..m * k)
            .map(|_| (standard_normal(&mut rng) * 700.0) as i16)
            .collect();
        let b: Vec<i16> = (0..n * k)
            .map(|_| (standard_normal(&mut rng) * 700.0) as i16)
            .collect();
        let plain = i16_matmul_nt_i64(&a, &b, m, k, n);
        let hinted = {
            let _g = batch_rows_hint(10);
            // Grain grows toward one image per chunk but never past it,
            // and never shrinks below the classic default (the exact
            // value depends on the pool width).
            let g = packed_row_grain(m);
            assert!((ROW_GRAIN..=10).contains(&g), "grain {g} out of range");
            i16_matmul_nt_i64(&a, &b, m, k, n)
        };
        assert_eq!(plain, hinted, "row grain must never change bytes");
        // Guard dropped: grain is back to the default.
        assert_eq!(packed_row_grain(m), ROW_GRAIN);
    }

    #[test]
    fn int_matmul_matches_float_on_integers() {
        let a = IntTensor::from_vec(vec![1, -2, 3, 4, 0, -1], &[2, 3]).unwrap();
        let b = IntTensor::from_vec(vec![2, 1, 0, -1, 1, 3], &[3, 2]).unwrap();
        let c = int_matmul(&a, &b).unwrap();
        let af = a.to_f32(1.0);
        let bf = b.to_f32(1.0);
        let cf = matmul(&af, &bf).unwrap();
        for (ci, cfi) in c.data().iter().zip(cf.data()) {
            assert_eq!(*ci as f32, *cfi);
        }
    }
}
