//! Matrix products: the GEMM core that all "green" (quantizable) operations
//! of the paper's Fig. 1 reduce to.

use crate::{IntTensor, Tensor, TensorError};

/// Multiplies two rank-2 tensors: `C[m,n] = A[m,k] · B[k,n]`.
///
/// Uses an i-k-j loop order with a transposed accumulation pattern that keeps
/// the inner loop contiguous for both operands, which is enough for the model
/// sizes exercised here.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] when either input is not rank 2 and
/// [`TensorError::InnerDimMismatch`] when `A`'s columns differ from `B`'s rows.
pub fn matmul(a: &Tensor, b: &Tensor) -> crate::Result<Tensor> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, actual: a.rank() });
    }
    if b.rank() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, actual: b.rank() });
    }
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    if k != k2 {
        return Err(TensorError::InnerDimMismatch { lhs_cols: k, rhs_rows: k2 });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += av * bv;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Multiplies `A[m,k]` by the transpose of `B[n,k]`: `C[m,n] = A · Bᵀ`.
///
/// Attention scores `Q·Kᵀ` use this directly so `K` never needs an explicit
/// transpose copy.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or [`TensorError::InnerDimMismatch`]
/// as for [`matmul`].
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> crate::Result<Tensor> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, actual: a.rank() });
    }
    if b.rank() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, actual: b.rank() });
    }
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (n, k2) = (b.shape()[0], b.shape()[1]);
    if k != k2 {
        return Err(TensorError::InnerDimMismatch { lhs_cols: k, rhs_rows: k2 });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// Applies a linear layer `y = x·Wᵀ + bias` where `x` is `[..., in]` and `w`
/// is `[out, in]` (PyTorch weight layout, which the ViT substrate mirrors).
///
/// # Errors
///
/// Returns a shape error when the trailing dimension of `x` differs from
/// `w.shape()[1]` or when `bias` (if present) has length ≠ `w.shape()[0]`.
pub fn linear(x: &Tensor, w: &Tensor, bias: Option<&Tensor>) -> crate::Result<Tensor> {
    let (rows, cols) = x.as_matrix()?;
    let x2 = x.reshape(&[rows, cols])?;
    let y = matmul_nt(&x2, w)?;
    let y = match bias {
        Some(b) => y.add_bias(b)?,
        None => y,
    };
    let mut shape = x.shape().to_vec();
    *shape.last_mut().expect("rank >= 1") = w.shape()[0];
    y.into_reshape(&shape)
}

/// Integer matrix product with 32-bit accumulation: `C[m,n] = A[m,k] · B[k,n]`.
///
/// This models the PE-array accumulation path of the paper's accelerator:
/// products of b-bit codes accumulated in wide integers (Eq. 2 before the
/// requantization scale).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or [`TensorError::InnerDimMismatch`]
/// as for [`matmul`].
pub fn int_matmul(a: &IntTensor, b: &IntTensor) -> crate::Result<IntTensor> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, actual: a.rank() });
    }
    if b.rank() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, actual: b.rank() });
    }
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    if k != k2 {
        return Err(TensorError::InnerDimMismatch { lhs_cols: k, rhs_rows: k2 });
    }
    let mut out = vec![0i32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        for p in 0..k {
            let av = ad[i * k + p];
            if av == 0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o = o.wrapping_add(av.wrapping_mul(bv));
            }
        }
    }
    IntTensor::from_vec(out, &[m, n])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    #[test]
    fn matmul_small_known_answer() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = t(&[1.0, 2.0], &[1, 2]);
        let b = t(&[1.0, 2.0, 3.0], &[3, 1]);
        assert!(matches!(matmul(&a, &b), Err(TensorError::InnerDimMismatch { .. })));
        let v = t(&[1.0], &[1]);
        assert!(matches!(matmul(&v, &a), Err(TensorError::RankMismatch { .. })));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 1.0, 2.0, 3.0], &[2, 3]);
        let via_nt = matmul_nt(&a, &b).unwrap();
        let via_t = matmul(&a, &b.transpose().unwrap()).unwrap();
        assert_eq!(via_nt, via_t);
    }

    #[test]
    fn linear_matches_manual_gemm() {
        // x: [2, 3], w: [4, 3] (out=4, in=3)
        let x = t(&[1.0, 0.0, -1.0, 2.0, 2.0, 2.0], &[2, 3]);
        let w = t(&(0..12).map(|i| i as f32 * 0.1).collect::<Vec<_>>(), &[4, 3]);
        let b = t(&[1.0, 1.0, 1.0, 1.0], &[4]);
        let y = linear(&x, &w, Some(&b)).unwrap();
        assert_eq!(y.shape(), &[2, 4]);
        // First row, first output: 1*0 + 0*0.1 + (-1)*0.2 + 1 = 0.8
        assert!((y.at(&[0, 0]) - 0.8).abs() < 1e-6);
    }

    #[test]
    fn linear_preserves_leading_axes() {
        let x = Tensor::zeros(&[2, 5, 3]);
        let w = Tensor::zeros(&[4, 3]);
        let y = linear(&x, &w, None).unwrap();
        assert_eq!(y.shape(), &[2, 5, 4]);
    }

    #[test]
    fn int_matmul_matches_float_on_integers() {
        let a = IntTensor::from_vec(vec![1, -2, 3, 4, 0, -1], &[2, 3]).unwrap();
        let b = IntTensor::from_vec(vec![2, 1, 0, -1, 1, 3], &[3, 2]).unwrap();
        let c = int_matmul(&a, &b).unwrap();
        let af = a.to_f32(1.0);
        let bf = b.to_f32(1.0);
        let cf = matmul(&af, &bf).unwrap();
        for (ci, cfi) in c.data().iter().zip(cf.data()) {
            assert_eq!(*ci as f32, *cfi);
        }
    }
}
