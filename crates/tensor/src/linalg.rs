//! Matrix products: the GEMM core that all "green" (quantizable) operations
//! of the paper's Fig. 1 reduce to.
//!
//! The kernels are cache-blocked and row-parallel on the [`crate::pool`]
//! work-stealing pool. Output rows are independent and every output element
//! accumulates its `k` products in ascending-index order regardless of how
//! rows are chunked across threads, so results are **bit-identical at every
//! thread count** (including the `QUQ_THREADS=1` serial reference).

use crate::{pool, IntTensor, Tensor, TensorError};

/// Rows of `B` (the shared operand) processed per pass so the active block
/// stays cache-resident while a chunk of output rows streams over it.
const KC: usize = 128;

/// Output columns accumulated together in `matmul_nt`'s inner kernel: four
/// dot products share one pass over the `A` row.
const JB: usize = 4;

/// Rows of output per work-stealing chunk. Small enough to balance the
/// pool on ViT-sized matrices (a few hundred rows), large enough that a
/// chunk amortizes its claim.
const ROW_GRAIN: usize = 8;

fn check_rank2(t: &Tensor) -> crate::Result<()> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.rank(),
        });
    }
    Ok(())
}

/// Multiplies two rank-2 tensors: `C[m,n] = A[m,k] · B[k,n]`.
///
/// Row-parallel i-k-j kernel with `k` blocked in [`KC`]-row panels of `B`:
/// each panel is reused across every output row of a chunk while the inner
/// loop streams both operands contiguously. Zero entries of `A` are *not*
/// skipped — `0 × NaN` and `0 × ∞` must propagate into the product exactly
/// as IEEE 754 defines them.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] when either input is not rank 2 and
/// [`TensorError::InnerDimMismatch`] when `A`'s columns differ from `B`'s rows.
pub fn matmul(a: &Tensor, b: &Tensor) -> crate::Result<Tensor> {
    check_rank2(a)?;
    check_rank2(b)?;
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    if k != k2 {
        return Err(TensorError::InnerDimMismatch {
            lhs_cols: k,
            rhs_rows: k2,
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    if n > 0 {
        pool::parallel_rows_mut(&mut out, n, ROW_GRAIN, |first_row, block| {
            matmul_block(ad, bd, block, first_row, k, n);
        });
    }
    Tensor::from_vec(out, &[m, n])
}

/// Computes a block of output rows of `A·B` starting at `first_row`.
///
/// Accumulation into each element runs over `p = 0..k` ascending (panels
/// ascend, `p` ascends within a panel), independent of the block split.
fn matmul_block(ad: &[f32], bd: &[f32], block: &mut [f32], first_row: usize, k: usize, n: usize) {
    for panel_start in (0..k).step_by(KC) {
        let panel_end = (panel_start + KC).min(k);
        for (r, orow) in block.chunks_exact_mut(n).enumerate() {
            let arow = &ad[(first_row + r) * k..(first_row + r + 1) * k];
            for p in panel_start..panel_end {
                let av = arow[p];
                let brow = &bd[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    }
}

/// Multiplies `A[m,k]` by the transpose of `B[n,k]`: `C[m,n] = A · Bᵀ`.
///
/// Attention scores `Q·Kᵀ` use this directly so `K` never needs an explicit
/// transpose copy. Row-parallel dot-product kernel computing [`JB`] output
/// columns per pass over the `A` row (one load of `A` feeds four
/// independent accumulators).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or [`TensorError::InnerDimMismatch`]
/// as for [`matmul`].
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> crate::Result<Tensor> {
    check_rank2(a)?;
    check_rank2(b)?;
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (n, k2) = (b.shape()[0], b.shape()[1]);
    if k != k2 {
        return Err(TensorError::InnerDimMismatch {
            lhs_cols: k,
            rhs_rows: k2,
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    if n > 0 {
        pool::parallel_rows_mut(&mut out, n, ROW_GRAIN, |first_row, block| {
            matmul_nt_block(ad, bd, block, first_row, k, n);
        });
    }
    Tensor::from_vec(out, &[m, n])
}

/// Computes a block of output rows of `A·Bᵀ` starting at `first_row`.
///
/// Each output element is an independent ascending-`k` dot product, so the
/// [`JB`]-wide column tiling never reorders any element's accumulation.
fn matmul_nt_block(
    ad: &[f32],
    bd: &[f32],
    block: &mut [f32],
    first_row: usize,
    k: usize,
    n: usize,
) {
    for (r, orow) in block.chunks_exact_mut(n).enumerate() {
        let arow = &ad[(first_row + r) * k..(first_row + r + 1) * k];
        let mut j = 0;
        while j + JB <= n {
            let b0 = &bd[j * k..(j + 1) * k];
            let b1 = &bd[(j + 1) * k..(j + 2) * k];
            let b2 = &bd[(j + 2) * k..(j + 3) * k];
            let b3 = &bd[(j + 3) * k..(j + 4) * k];
            let (mut a0, mut a1, mut a2, mut a3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for p in 0..k {
                let x = arow[p];
                a0 += x * b0[p];
                a1 += x * b1[p];
                a2 += x * b2[p];
                a3 += x * b3[p];
            }
            orow[j] = a0;
            orow[j + 1] = a1;
            orow[j + 2] = a2;
            orow[j + 3] = a3;
            j += JB;
        }
        while j < n {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            orow[j] = acc;
            j += 1;
        }
    }
}

/// Applies a linear layer `y = x·Wᵀ + bias` where `x` is `[..., in]` and `w`
/// is `[out, in]` (PyTorch weight layout, which the ViT substrate mirrors).
///
/// # Errors
///
/// Returns a shape error when the trailing dimension of `x` differs from
/// `w.shape()[1]` or when `bias` (if present) has length ≠ `w.shape()[0]`.
pub fn linear(x: &Tensor, w: &Tensor, bias: Option<&Tensor>) -> crate::Result<Tensor> {
    let (rows, cols) = x.as_matrix()?;
    let x2 = x.reshape(&[rows, cols])?;
    let y = matmul_nt(&x2, w)?;
    let y = match bias {
        Some(b) => y.add_bias(b)?,
        None => y,
    };
    let mut shape = x.shape().to_vec();
    *shape.last_mut().expect("rank >= 1") = w.shape()[0];
    y.into_reshape(&shape)
}

/// Integer matrix product with 32-bit accumulation: `C[m,n] = A[m,k] · B[k,n]`.
///
/// This models the PE-array accumulation path of the paper's accelerator:
/// products of b-bit codes accumulated in wide integers (Eq. 2 before the
/// requantization scale). Row-parallel like [`matmul`]; the zero-skip is
/// kept here because integer `0 × b` contributes exactly nothing.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] or [`TensorError::InnerDimMismatch`]
/// as for [`matmul`].
pub fn int_matmul(a: &IntTensor, b: &IntTensor) -> crate::Result<IntTensor> {
    if a.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: a.rank(),
        });
    }
    if b.rank() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: b.rank(),
        });
    }
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    if k != k2 {
        return Err(TensorError::InnerDimMismatch {
            lhs_cols: k,
            rhs_rows: k2,
        });
    }
    let mut out = vec![0i32; m * n];
    let ad = a.data();
    let bd = b.data();
    if n > 0 {
        pool::parallel_rows_mut(&mut out, n, ROW_GRAIN, |first_row, block| {
            for (r, orow) in block.chunks_exact_mut(n).enumerate() {
                let i = first_row + r;
                for p in 0..k {
                    let av = ad[i * k + p];
                    if av == 0 {
                        continue;
                    }
                    let brow = &bd[p * n..(p + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o = o.wrapping_add(av.wrapping_mul(bv));
                    }
                }
            }
        });
    }
    IntTensor::from_vec(out, &[m, n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::standard_normal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    fn random(shape: &[usize], seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let len: usize = shape.iter().product();
        Tensor::from_vec((0..len).map(|_| standard_normal(&mut rng)).collect(), shape).unwrap()
    }

    #[test]
    fn matmul_small_known_answer() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = t(&[1.0, 2.0], &[1, 2]);
        let b = t(&[1.0, 2.0, 3.0], &[3, 1]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::InnerDimMismatch { .. })
        ));
        let v = t(&[1.0], &[1]);
        assert!(matches!(
            matmul(&v, &a),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 1.0, 2.0, 3.0], &[2, 3]);
        let via_nt = matmul_nt(&a, &b).unwrap();
        let via_t = matmul(&a, &b.transpose().unwrap()).unwrap();
        // Different kernels, so compare numerically rather than bitwise.
        for (x, y) in via_nt.data().iter().zip(via_t.data()) {
            assert!((x - y).abs() <= 1e-4 * x.abs().max(1.0));
        }
    }

    #[test]
    fn matmul_propagates_nan_and_inf_through_zero_rows() {
        // A zero entry of `A` must not short-circuit a NaN/∞ in `B`:
        // IEEE 754 says 0 × NaN = NaN and 0 × ∞ = NaN.
        let a = t(&[0.0, 1.0], &[1, 2]);
        let b = t(&[f32::NAN, 0.0, f32::INFINITY, 2.0], &[2, 2]);
        let c = matmul(&a, &b).unwrap();
        assert!(c.data()[0].is_nan(), "0·NaN + 1·∞ must not be finite");
        assert_eq!(c.data()[1], 2.0);
    }

    #[test]
    fn parallel_and_serial_matmul_are_bit_identical() {
        // Sizes straddle the KC panel and ROW_GRAIN chunk boundaries.
        for (m, k, n, seed) in [(3, 5, 4, 1), (17, 130, 9, 2), (64, 300, 33, 3)] {
            let a = random(&[m, k], seed);
            let b = random(&[k, n], seed + 100);
            let bt = random(&[n, k], seed + 200);
            let par = matmul(&a, &b).unwrap();
            let par_nt = matmul_nt(&a, &bt).unwrap();
            let (ser, ser_nt) =
                pool::run_serial(|| (matmul(&a, &b).unwrap(), matmul_nt(&a, &bt).unwrap()));
            assert_eq!(par.data(), ser.data(), "matmul {m}x{k}x{n} diverged");
            assert_eq!(
                par_nt.data(),
                ser_nt.data(),
                "matmul_nt {m}x{k}x{n} diverged"
            );
        }
    }

    #[test]
    fn linear_matches_manual_gemm() {
        // x: [2, 3], w: [4, 3] (out=4, in=3)
        let x = t(&[1.0, 0.0, -1.0, 2.0, 2.0, 2.0], &[2, 3]);
        let w = t(
            &(0..12).map(|i| i as f32 * 0.1).collect::<Vec<_>>(),
            &[4, 3],
        );
        let b = t(&[1.0, 1.0, 1.0, 1.0], &[4]);
        let y = linear(&x, &w, Some(&b)).unwrap();
        assert_eq!(y.shape(), &[2, 4]);
        // First row, first output: 1*0 + 0*0.1 + (-1)*0.2 + 1 = 0.8
        assert!((y.at(&[0, 0]) - 0.8).abs() < 1e-6);
    }

    #[test]
    fn linear_preserves_leading_axes() {
        let x = Tensor::zeros(&[2, 5, 3]);
        let w = Tensor::zeros(&[4, 3]);
        let y = linear(&x, &w, None).unwrap();
        assert_eq!(y.shape(), &[2, 5, 4]);
    }

    #[test]
    fn int_matmul_matches_float_on_integers() {
        let a = IntTensor::from_vec(vec![1, -2, 3, 4, 0, -1], &[2, 3]).unwrap();
        let b = IntTensor::from_vec(vec![2, 1, 0, -1, 1, 3], &[3, 2]).unwrap();
        let c = int_matmul(&a, &b).unwrap();
        let af = a.to_f32(1.0);
        let bf = b.to_f32(1.0);
        let cf = matmul(&af, &bf).unwrap();
        for (ci, cfi) in c.data().iter().zip(cf.data()) {
            assert_eq!(*ci as f32, *cfi);
        }
    }
}
