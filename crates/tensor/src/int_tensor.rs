//! Dense row-major integer tensor used on quantized execution paths.

use crate::{Tensor, TensorError};

/// A dense, row-major tensor of `i32` values.
///
/// Quantized activations and weights live in `IntTensor`s; the element type is
/// `i32` so that b-bit codes (b ≤ 8 in the paper) and 32-bit accumulators share
/// one representation while staying visibly distinct from floating-point
/// [`Tensor`]s.
///
/// ```
/// use quq_tensor::IntTensor;
/// let q = IntTensor::from_vec(vec![-3, 0, 7], &[3])?;
/// assert_eq!(q.data(), &[-3, 0, 7]);
/// # Ok::<(), quq_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntTensor {
    shape: Vec<usize>,
    data: Vec<i32>,
}

impl IntTensor {
    /// Creates an integer tensor from raw data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] when `data.len()` does not
    /// equal the product of `shape`.
    pub fn from_vec(data: Vec<i32>, shape: &[usize]) -> crate::Result<Self> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(TensorError::ShapeDataMismatch {
                shape: shape.to_vec(),
                len: data.len(),
            });
        }
        Ok(Self {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Creates a zero-filled integer tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![0; len],
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The tensor's rank.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing buffer (row-major).
    pub fn data(&self) -> &[i32] {
        &self.data
    }

    /// Mutable view of the backing buffer (row-major).
    pub fn data_mut(&mut self) -> &mut [i32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its backing buffer.
    pub fn into_vec(self) -> Vec<i32> {
        self.data
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(i32) -> i32) -> Self {
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Converts each element to `f32` after multiplying by `scale`.
    ///
    /// This is the generic dequantization step `x ≈ Δ·x̂`.
    pub fn to_f32(&self, scale: f32) -> Tensor {
        let data = self.data.iter().map(|&x| x as f32 * scale).collect();
        Tensor::from_vec(data, &self.shape).expect("shape preserved")
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] when element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> crate::Result<Self> {
        Self::from_vec(self.data.clone(), shape)
    }

    /// Minimum element (`i32::MAX` for an empty tensor).
    pub fn min(&self) -> i32 {
        self.data.iter().copied().min().unwrap_or(i32::MAX)
    }

    /// Maximum element (`i32::MIN` for an empty tensor).
    pub fn max(&self) -> i32 {
        self.data.iter().copied().max().unwrap_or(i32::MIN)
    }
}

impl Default for IntTensor {
    fn default() -> Self {
        Self::zeros(&[0])
    }
}

/// A dense, row-major tensor of `i16` values: the *packed panel* format of
/// the integer GEMM pipeline.
///
/// QUB decode produces pre-shifted values `D · 2^{n_sh}`; with `b ≤ 8` and
/// `n_sh ≤ 7` every such value fits an `i16` (|D·2^{n_sh}| ≤ 2^14), so a
/// decoded operand occupies 2 bytes per element — a quarter of a
/// `(D, n_sh)` pair — and feeds a dense multiply-accumulate kernel with no
/// per-element shift. This mirrors the paper's decoding-unit/PE-array
/// split: the DU output (`d = D << n_sh`) is exactly what the PE array
/// consumes.
///
/// ```
/// use quq_tensor::I16Tensor;
/// let p = I16Tensor::from_vec(vec![-3, 0, 7], &[3])?;
/// assert_eq!(p.data(), &[-3, 0, 7]);
/// # Ok::<(), quq_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct I16Tensor {
    shape: Vec<usize>,
    data: Vec<i16>,
}

impl I16Tensor {
    /// Creates a packed tensor from raw data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] when `data.len()` does not
    /// equal the product of `shape`.
    pub fn from_vec(data: Vec<i16>, shape: &[usize]) -> crate::Result<Self> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(TensorError::ShapeDataMismatch {
                shape: shape.to_vec(),
                len: data.len(),
            });
        }
        Ok(Self {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Creates a zero-filled packed tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![0; len],
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing buffer (row-major).
    pub fn data(&self) -> &[i16] {
        &self.data
    }

    /// Consumes the tensor and returns its backing buffer.
    pub fn into_vec(self) -> Vec<i16> {
        self.data
    }

    /// Widens every element to `i32`, producing an [`IntTensor`].
    pub fn to_i32(&self) -> IntTensor {
        IntTensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| x as i32).collect(),
        }
    }

    /// Converts each element to `f32` after multiplying by `scale`.
    pub fn to_f32(&self, scale: f32) -> Tensor {
        let data = self.data.iter().map(|&x| x as f32 * scale).collect();
        Tensor::from_vec(data, &self.shape).expect("shape preserved")
    }
}

impl Default for I16Tensor {
    fn default() -> Self {
        Self::zeros(&[0])
    }
}

impl std::fmt::Display for IntTensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IntTensor{:?}(", self.shape)?;
        let preview: Vec<String> = self.data.iter().take(8).map(|x| x.to_string()).collect();
        write!(f, "{}", preview.join(", "))?;
        if self.data.len() > 8 {
            write!(f, ", …")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_len() {
        assert!(IntTensor::from_vec(vec![1, 2, 3], &[3]).is_ok());
        assert!(IntTensor::from_vec(vec![1, 2], &[3]).is_err());
    }

    #[test]
    fn to_f32_scales() {
        let q = IntTensor::from_vec(vec![-2, 0, 4], &[3]).unwrap();
        let t = q.to_f32(0.5);
        assert_eq!(t.data(), &[-1.0, 0.0, 2.0]);
    }

    #[test]
    fn min_max() {
        let q = IntTensor::from_vec(vec![5, -7, 3], &[3]).unwrap();
        assert_eq!(q.min(), -7);
        assert_eq!(q.max(), 5);
        let e = IntTensor::zeros(&[0]);
        assert_eq!(e.min(), i32::MAX);
        assert_eq!(e.max(), i32::MIN);
    }

    #[test]
    fn map_applies_elementwise() {
        let q = IntTensor::from_vec(vec![1, -2], &[2]).unwrap();
        assert_eq!(q.map(|x| x << 1).data(), &[2, -4]);
    }

    #[test]
    fn display_is_nonempty() {
        let q = IntTensor::zeros(&[2]);
        assert!(!format!("{q}").is_empty());
    }

    #[test]
    fn i16_from_vec_checks_len() {
        assert!(I16Tensor::from_vec(vec![1, 2, 3], &[3]).is_ok());
        assert!(I16Tensor::from_vec(vec![1, 2], &[3]).is_err());
    }

    #[test]
    fn i16_widens_and_scales() {
        let p = I16Tensor::from_vec(vec![-2, 0, 4], &[3]).unwrap();
        assert_eq!(p.to_i32().data(), &[-2, 0, 4]);
        assert_eq!(p.to_f32(0.5).data(), &[-1.0, 0.0, 2.0]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.shape(), &[3]);
    }

    #[test]
    fn i16_default_is_empty() {
        assert!(I16Tensor::default().is_empty());
        assert_eq!(I16Tensor::zeros(&[2, 2]).into_vec(), vec![0; 4]);
    }
}
