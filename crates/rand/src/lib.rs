//! # rand — offline stand-in for the `rand` crate
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors the *minimal* slice of the `rand 0.8` API its own code uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_range`, and `gen_bool`. Import paths match
//! the real crate so swapping the registry version back in later is a
//! one-line `Cargo.toml` change.
//!
//! The generator is **xoshiro256++** seeded through SplitMix64 — not the
//! ChaCha12 core of upstream `StdRng`, so *streams differ from upstream for
//! the same seed*. Nothing in this workspace depends on the exact stream,
//! only on determinism (same seed ⇒ same sequence) and on sound statistical
//! behaviour, both of which xoshiro256++ provides.

/// A source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from an `Rng` (the `Standard`
/// distribution of the real crate, folded into a single trait).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange {
    /// The element type produced.
    type Output;

    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start() <= self.end(), "cannot sample from empty range");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (*self.start() as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(i32, i64, u32, u64, usize);

impl SampleRange for std::ops::Range<f32> {
    type Output = f32;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` (uniform floats in `[0, 1)`, fair bools,
    /// full-range integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators (mirrors `rand::rngs`).

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Seeded through SplitMix64 so that every `u64` seed — including 0 —
    /// yields a well-mixed internal state.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure for
            // the xoshiro family.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f32_samples_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn f32_mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f32>() as f64).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.gen_range(0..4);
            assert!((0..4).contains(&v));
            let w = rng.gen_range(3u32..=7);
            assert!((3..=7).contains(&w));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn bool_samples_are_fair() {
        let mut rng = StdRng::seed_from_u64(8);
        let trues = (0..100_000).filter(|_| rng.gen::<bool>()).count();
        assert!((trues as f64 / 100_000.0 - 0.5).abs() < 0.01);
    }
}
