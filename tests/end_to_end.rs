//! End-to-end integration: synthesize a model, calibrate, execute quantized,
//! and check the paper's qualitative claims on a fast test configuration.

use quq_baselines::BaseQ;
use quq_core::pipeline::{calibrate, evaluate_quantized, PtqConfig};
use quq_core::{Coverage, QuantMethod, QuqMethod};
use quq_vit::{evaluate, Dataset, Fp32Backend, ModelConfig, VitModel};

fn test_model(seed: u64) -> VitModel {
    VitModel::synthesize(ModelConfig::test_config(), seed)
}

#[test]
fn fp32_evaluation_is_perfect_by_construction() {
    let model = test_model(1);
    let ds = Dataset::teacher_labeled(&model, 12, 2).unwrap();
    let acc = evaluate(&model, &mut Fp32Backend::new(), &ds).unwrap();
    assert_eq!(acc, 1.0);
}

#[test]
fn quantized_pipeline_is_deterministic() {
    let model = test_model(3);
    let calib = Dataset::calibration(model.config(), 4, 5);
    let eval = Dataset::teacher_labeled(&model, 12, 6).unwrap();
    let method = QuqMethod::paper();
    let cfg = PtqConfig::full_w6a6();
    let a = evaluate_quantized(&method, &model, &calib, &eval, cfg).unwrap();
    let b = evaluate_quantized(&method, &model, &calib, &eval, cfg).unwrap();
    assert_eq!(a, b);
}

#[test]
fn partial_quantization_degrades_less_than_full() {
    let model = test_model(4);
    let calib = Dataset::calibration(model.config(), 6, 7);
    let eval = Dataset::teacher_labeled(&model, 24, 8).unwrap();
    let method = BaseQ::new();
    let partial = evaluate_quantized(
        &method,
        &model,
        &calib,
        &eval,
        PtqConfig {
            bits_w: 6,
            bits_a: 6,
            coverage: Coverage::Partial,
        },
    )
    .unwrap();
    let full = evaluate_quantized(
        &method,
        &model,
        &calib,
        &eval,
        PtqConfig {
            bits_w: 6,
            bits_a: 6,
            coverage: Coverage::Full,
        },
    )
    .unwrap();
    // The paper's Fig. 1/2 motivation: full quantization touches the hard
    // tensors, so (for a uniform quantizer) it can only be harder.
    assert!(partial >= full, "partial {partial} < full {full}");
}

#[test]
fn quq_at_least_matches_baseq_on_full_quantization() {
    let model = test_model(5);
    let calib = Dataset::calibration(model.config(), 6, 9);
    let eval = Dataset::teacher_labeled_confident(&model, 24, 10).unwrap();
    let cfg = PtqConfig::full_w6a6();
    let quq = evaluate_quantized(&QuqMethod::paper(), &model, &calib, &eval, cfg).unwrap();
    let baseq = evaluate_quantized(&BaseQ::new(), &model, &calib, &eval, cfg).unwrap();
    assert!(quq >= baseq, "QUQ {quq} < BaseQ {baseq}");
}

#[test]
fn eight_bit_full_quq_is_near_lossless() {
    let model = test_model(6);
    let calib = Dataset::calibration(model.config(), 6, 11);
    let eval = Dataset::teacher_labeled_confident(&model, 24, 12).unwrap();
    let acc = evaluate_quantized(
        &QuqMethod::paper(),
        &model,
        &calib,
        &eval,
        PtqConfig::full_w8a8(),
    )
    .unwrap();
    assert!(acc >= 0.9, "8-bit QUQ agreement {acc}");
}

#[test]
fn swin_models_run_through_the_full_pipeline() {
    let model = VitModel::synthesize(ModelConfig::test_swin_config(), 7);
    let calib = Dataset::calibration(model.config(), 4, 13);
    let eval = Dataset::teacher_labeled(&model, 8, 14).unwrap();
    let acc = evaluate_quantized(
        &QuqMethod::paper(),
        &model,
        &calib,
        &eval,
        PtqConfig::full_w8a8(),
    )
    .unwrap();
    assert!((0.0..=1.0).contains(&acc));
}

#[test]
fn calibration_tables_describe_their_quantizers() {
    let model = test_model(8);
    let calib = Dataset::calibration(model.config(), 4, 15);
    let tables = calibrate(&QuqMethod::paper(), &model, &calib, PtqConfig::full_w6a6()).unwrap();
    let site = quq_vit::OpSite::in_block(0, quq_vit::OpKind::Qkv);
    let desc = tables
        .weight_description(&site)
        .expect("qkv weight description");
    assert!(desc.contains("QUQ"), "{desc}");
}

#[test]
fn method_trait_objects_are_interchangeable() {
    let model = test_model(9);
    let calib = Dataset::calibration(model.config(), 3, 16);
    let eval = Dataset::teacher_labeled(&model, 6, 17).unwrap();
    let methods: Vec<Box<dyn QuantMethod>> = vec![
        Box::new(BaseQ::new()),
        Box::new(quq_baselines::BiScaledFxp::new()),
        Box::new(quq_baselines::FqVit::new()),
        Box::new(quq_baselines::Ptq4Vit::new()),
        Box::new(quq_baselines::ApqVit::new()),
        Box::new(QuqMethod::paper()),
    ];
    for m in &methods {
        let acc =
            evaluate_quantized(m.as_ref(), &model, &calib, &eval, PtqConfig::full_w8a8()).unwrap();
        assert!((0.0..=1.0).contains(&acc), "{}", m.name());
    }
}
