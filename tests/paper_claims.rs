//! The paper's headline claims, checked end to end at reduced scale.

use quq_bench::experiments::{fig2, table1, table4};
use quq_bench::Settings;

#[test]
fn claim_fig2_full_quantization_saves_memory_everywhere() {
    for bits in [6u32, 8] {
        for p in fig2::series(bits) {
            assert!(p.fq_kib < p.pq_kib, "{p:?}");
        }
    }
}

#[test]
fn claim_fig2_memory_overhead_band_overlaps_papers() {
    // Paper abstract: 22.3%–172.6% extra memory for partial quantization.
    let overheads: Vec<f64> = [6u32, 8]
        .iter()
        .flat_map(|&b| fig2::series(b))
        .map(|p| p.overhead())
        .collect();
    let lo = overheads.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = overheads.iter().cloned().fold(0.0, f64::max);
    assert!(
        lo < 1.0 && hi > 0.5,
        "band [{lo:.2}, {hi:.2}] does not overlap the paper's"
    );
}

#[test]
fn claim_table1_quq_mse_below_baseq_everywhere() {
    let rows = table1::rows(1, Settings::paper().seed);
    for bits in [4u32, 6, 8] {
        let base = rows
            .iter()
            .find(|r| r.method == "BaseQ" && r.bits == bits)
            .unwrap();
        let quq = rows
            .iter()
            .find(|r| r.method == "QUQ" && r.bits == bits)
            .unwrap();
        for i in 0..4 {
            assert!(
                quq.mse[i] <= base.mse[i] * 1.0001,
                "bits {bits}, tensor {i}: {:.3e} vs {:.3e}",
                quq.mse[i],
                base.mse[i]
            );
        }
    }
}

#[test]
fn claim_table4_quq_cheaper_than_higher_bit_baseq() {
    let reports = table4::reports();
    let find = |scheme: quq_accel::Scheme, bits: u32, array: usize| {
        reports
            .iter()
            .find(|r| r.config.scheme == scheme && r.config.bits == bits && r.config.array == array)
            .unwrap()
    };
    for array in [16usize, 64] {
        let q6 = find(quq_accel::Scheme::Quq, 6, array);
        let b8 = find(quq_accel::Scheme::BaseQ, 8, array);
        assert!(q6.area_mm2 < b8.area_mm2, "area at {array}");
        assert!(q6.power_mw < b8.power_mw, "power at {array}");
        let b6 = find(quq_accel::Scheme::BaseQ, 6, array);
        let q = find(quq_accel::Scheme::Quq, 6, array);
        assert!(q.area_mm2 / b6.area_mm2 < 1.08, "area overhead at {array}");
        assert!(q.power_mw / b6.power_mw < 1.10, "power overhead at {array}");
    }
}

#[test]
fn claim_uniform_is_a_special_case_of_quq() {
    // §3.2: Mode D with equal scales = symmetric uniform quantization.
    let delta = 0.07f32;
    let quq = quq_core::QuqParams::uniform(6, delta).unwrap();
    let uni = quq_core::UniformQuantizer::new(6, delta);
    for i in -500..500 {
        let x = i as f32 * 0.011;
        assert!(
            (quq.fake_quantize(x) - uni.fake_quantize(x)).abs() < 1e-6,
            "at {x}"
        );
    }
}

#[test]
fn claim_pra_adapts_mode_to_distribution_shape() {
    // Fig. 3/4: the algorithm picks different modes for the four tensor
    // families. Verified on real captured activations.
    let panels = quq_bench::experiments::fig3::panels(1, Settings::paper().seed);
    let modes: std::collections::BTreeSet<String> =
        panels.iter().map(|p| p.mode.to_string()).collect();
    assert!(
        modes.len() >= 2,
        "PRA fit only modes {modes:?} across the four tensors"
    );
    // Post-Softmax (non-negative) must merge to one side: Mode B.
    assert_eq!(panels[1].mode, quq_core::Mode::B);
}
