//! Hardware/software equivalence: the QUA functional simulator must compute
//! exactly what the QUQ software stack defines, across bit-widths and modes
//! — the property the paper's accelerator design (§4) rests on.

use quq_accel::Qua;
use quq_core::dot::{accumulator_value, matmul_nt_qub};
use quq_core::{decode_qub, Pra, QubCodec, QuqParams};
use quq_tensor::rng::{standard_normal, OutlierMixture};
use quq_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn encode(
    seed: u64,
    rows: usize,
    cols: usize,
    bits: u32,
    mix: OutlierMixture,
) -> quq_core::QubTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let vals = mix.sample_vec(&mut rng, rows * cols);
    let params = Pra::with_defaults(bits).run(&vals).params;
    QubCodec::new(params).encode_tensor(&Tensor::from_vec(vals, &[rows, cols]).unwrap())
}

#[test]
fn qua_gemm_is_bit_exact_across_bit_widths_and_array_shapes() {
    for bits in [4u32, 6, 8] {
        for (rows, cols) in [(2usize, 2usize), (4, 8), (16, 16)] {
            let a = encode(
                bits as u64 * 7 + 1,
                9,
                21,
                bits,
                OutlierMixture::new(0.05, 0.6, 0.02),
            );
            let w = encode(
                bits as u64 * 7 + 2,
                6,
                21,
                bits,
                OutlierMixture::new(0.02, 0.3, 0.01),
            );
            let out_params = QuqParams::uniform(bits, 0.125).unwrap();
            let (c, _) = Qua::new(rows, cols, bits).gemm(&a, &w, &out_params);
            let reference = matmul_nt_qub(&a, &w);
            let codec = QubCodec::new(out_params);
            for (i, &acc) in reference.iter().enumerate() {
                let v = accumulator_value(acc, a.base_delta, w.base_delta);
                assert_eq!(
                    c.bytes[i],
                    codec.encode(out_params.quantize(v)),
                    "bits {bits}, array {rows}×{cols}, element {i}"
                );
            }
        }
    }
}

#[test]
fn mode_b_tensors_flow_through_the_accelerator() {
    // Non-negative (softmax-like) activations: Mode B encodings.
    let mut rng = StdRng::seed_from_u64(11);
    let probs: Vec<f32> = (0..64)
        .map(|_| standard_normal(&mut rng).abs().min(3.0) / 3.0)
        .collect();
    let params = Pra::with_defaults(6).run(&probs).params;
    assert_eq!(params.mode(), quq_core::Mode::B);
    let qa = QubCodec::new(params).encode_tensor(&Tensor::from_vec(probs, &[4, 16]).unwrap());
    let w = encode(12, 4, 16, 6, OutlierMixture::new(0.05, 0.4, 0.02));
    let (c, _) = Qua::new(2, 2, 6).gemm(&qa, &w, &QuqParams::uniform(6, 0.05).unwrap());
    // Spot-check against the float product of the dequantized operands.
    let fa = qa.dequantize();
    let fw = w.dequantize();
    let reference = quq_tensor::linalg::matmul_nt(&fa, &fw).unwrap();
    let got = c.dequantize();
    for (g, r) in got.data().iter().zip(reference.data()) {
        assert!((g - r).abs() <= 0.05 / 2.0 + 0.05, "{g} vs {r}");
    }
}

#[test]
fn du_decode_is_pure_function_of_byte_and_registers() {
    // The decoding unit needs no access to the parameter object — only the
    // FC registers (paper §4.1). Cross-check the two code paths.
    let values = {
        let mut rng = StdRng::seed_from_u64(13);
        OutlierMixture::new(0.04, 0.7, 0.03).sample_vec(&mut rng, 5000)
    };
    for bits in [4u32, 6, 8] {
        let params = Pra::with_defaults(bits).run(&values).params;
        let codec = QubCodec::new(params);
        let fc = codec.fc();
        for byte in 0..(1u16 << bits) {
            let via_codec = codec.decode(byte as u8);
            let via_fn = decode_qub(byte as u8, fc, bits);
            assert_eq!(via_codec, via_fn);
        }
    }
}

#[test]
fn sfu_path_equals_dequantization_for_special_functions() {
    // §4.2: SFUs consume d = D << n_sh; Softmax over the SFU-decoded
    // integers (scaled) must equal Softmax over the dequantized floats.
    let values = {
        let mut rng = StdRng::seed_from_u64(14);
        OutlierMixture::new(0.3, 2.0, 0.05).sample_vec(&mut rng, 32)
    };
    let params = Pra::with_defaults(8).run(&values).params;
    let codec = QubCodec::new(params);
    let t = Tensor::from_vec(values, &[4, 8]).unwrap();
    let qt = codec.encode_tensor(&t);
    let qua = Qua::new(2, 2, 8);
    let ints = qua.sfu_load(&qt);
    let via_sfu = ints.to_f32(qt.base_delta);
    let direct = qt.dequantize();
    let s1 = quq_tensor::nn::softmax(&via_sfu).unwrap();
    let s2 = quq_tensor::nn::softmax(&direct).unwrap();
    for (a, b) in s1.data().iter().zip(s2.data()) {
        assert!((a - b).abs() < 1e-6);
    }
}

#[test]
fn memory_model_and_cost_model_agree_on_bit_width_direction() {
    // Cross-model sanity: lowering bits shrinks both memory and silicon.
    let cfg = quq_vit::ModelConfig::full_scale(quq_vit::ModelId::VitS);
    let m6 = quq_accel::simulate_block(&cfg, quq_accel::Regime::Fq, 6, 1).peak_bytes;
    let m8 = quq_accel::simulate_block(&cfg, quq_accel::Regime::Fq, 8, 1).peak_bytes;
    assert!(m6 < m8);
    let t = quq_accel::Tech::n28();
    let a6 = quq_accel::estimate(
        quq_accel::AcceleratorConfig::new(quq_accel::Scheme::Quq, 6, 16),
        t,
    );
    let a8 = quq_accel::estimate(
        quq_accel::AcceleratorConfig::new(quq_accel::Scheme::Quq, 8, 16),
        t,
    );
    assert!(a6.area_mm2 < a8.area_mm2);
}
