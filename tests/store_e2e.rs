//! End-to-end artifact bit-identity: calibrate → save → open in a **fresh
//! process** → logits must be bit-identical to the in-memory model, on both
//! the fp32 and integer backends, serial (`QUQ_THREADS=1`) and pooled
//! (`QUQ_THREADS=4`).
//!
//! The fresh process matters: it proves the artifact alone carries every
//! bit the runtime needs (weights, QUQ parameter tables, per-site QUB
//! records) with no help from state left in the calibrating process. The
//! parent re-executes this same test binary filtered to
//! [`child_emit_logits`], which is a no-op unless `QUQ_STORE_E2E_CHILD`
//! points at an artifact; the child prints its logits as `f32::to_bits`
//! hex so the comparison is exact by construction.

use std::path::PathBuf;
use std::process::Command;

use quq_accel::IntegerBackend;
use quq_core::pipeline::{calibrate, PtqConfig};
use quq_core::quantizer::QuqMethod;
use quq_store::{Artifact, ArtifactWriter, WriteOptions};
use quq_vit::{Dataset, Fp32Backend, ModelConfig, VitModel};

const IMG_FILL: f32 = 0.25;

fn temp_artifact(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("quq-store-e2e-{}-{tag}.quqm", std::process::id()))
}

/// Child half: loads the artifact named by `QUQ_STORE_E2E_CHILD`, runs one
/// forward on the backend named by `QUQ_STORE_E2E_BACKEND`, and prints the
/// logits bit-exactly. Does nothing when run as part of a normal test
/// sweep (the env var is absent).
#[test]
fn child_emit_logits() {
    let Ok(path) = std::env::var("QUQ_STORE_E2E_CHILD") else {
        return;
    };
    let backend = std::env::var("QUQ_STORE_E2E_BACKEND").expect("QUQ_STORE_E2E_BACKEND");
    let artifact = Artifact::open(path.as_ref()).expect("open artifact");
    let (model, tables) = artifact.load_all().expect("load artifact");
    let img = model.config().dummy_image(IMG_FILL);
    let logits = match backend.as_str() {
        "fp32" => model.forward(&img, &mut Fp32Backend::new()),
        "int" => model.forward(&img, &mut IntegerBackend::new(&tables)),
        other => panic!("unknown backend {other}"),
    }
    .expect("forward");
    let bits: Vec<String> = logits
        .data()
        .iter()
        .map(|v| format!("{:08x}", v.to_bits()))
        .collect();
    println!("LOGITS {}", bits.join(" "));
}

/// Runs the child in a fresh process and returns its logits, recovered
/// bit-exactly from the `LOGITS` line.
fn fresh_process_logits(path: &PathBuf, backend: &str, threads: usize) -> Vec<f32> {
    let exe = std::env::current_exe().expect("current_exe");
    let out = Command::new(exe)
        .args(["--exact", "child_emit_logits", "--nocapture"])
        .env("QUQ_STORE_E2E_CHILD", path)
        .env("QUQ_STORE_E2E_BACKEND", backend)
        .env("QUQ_THREADS", threads.to_string())
        .output()
        .expect("spawn child");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "child ({backend}, {threads} threads) failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // `--nocapture` interleaves our line with libtest's own "test … ok"
    // chatter (possibly on the same line), so match anywhere in the line.
    let line = stdout
        .lines()
        .find_map(|l| l.split_once("LOGITS ").map(|(_, rest)| rest))
        .unwrap_or_else(|| panic!("no LOGITS line in child output:\n{stdout}"));
    line.split_whitespace()
        .map(|h| f32::from_bits(u32::from_str_radix(h, 16).expect("hex logit")))
        .collect()
}

#[test]
fn fresh_process_logits_are_bit_identical_on_both_backends() {
    let config = ModelConfig::test_config();
    let model = VitModel::synthesize(config, 9);
    let calib = Dataset::calibration(model.config(), 4, 3);
    let tables = calibrate(
        &QuqMethod::without_optimization(),
        &model,
        &calib,
        PtqConfig::full_w8a8(),
    )
    .expect("calibration");

    let path = temp_artifact("bitident");
    ArtifactWriter::save(&model, &tables, &path).expect("save");

    let img = model.config().dummy_image(IMG_FILL);
    let want_fp32 = model
        .forward(&img, &mut Fp32Backend::new())
        .expect("fp32 forward");
    let want_int = model
        .forward(&img, &mut IntegerBackend::new(&tables))
        .expect("int forward");

    for threads in [1usize, 4] {
        let got_fp32 = fresh_process_logits(&path, "fp32", threads);
        assert_eq!(
            got_fp32.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want_fp32
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            "fp32 logits diverge at {threads} threads"
        );
        let got_int = fresh_process_logits(&path, "int", threads);
        assert_eq!(
            got_int.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want_int
                .data()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            "integer logits diverge at {threads} threads"
        );
    }
    let _ = std::fs::remove_file(&path);
}

/// The codec layer must be invisible to inference: the same model saved as
/// a v1 raw artifact and as a v2 compressed artifact yields bit-identical
/// logits from fresh processes, on both backends.
#[test]
fn v2_compressed_artifact_matches_v1_raw_in_fresh_processes() {
    let config = ModelConfig::test_config();
    let model = VitModel::synthesize(config, 9);
    let calib = Dataset::calibration(model.config(), 4, 3);
    let tables = calibrate(
        &QuqMethod::without_optimization(),
        &model,
        &calib,
        PtqConfig::full_w8a8(),
    )
    .expect("calibration");

    let v1_path = temp_artifact("v1-raw");
    ArtifactWriter::save_with(&model, &tables, &v1_path, &WriteOptions::v1()).expect("v1 save");

    let v2_path = temp_artifact("v2-auto");
    let report = ArtifactWriter::save_with(&model, &tables, &v2_path, &WriteOptions::default())
        .expect("v2 save");
    assert!(
        report.chunks.iter().any(|c| !c.stack.is_raw()),
        "the v2 auto artifact compressed nothing — the comparison would be vacuous"
    );
    assert!(report.total_bytes < std::fs::metadata(&v1_path).expect("stat v1").len());

    for backend in ["fp32", "int"] {
        let from_v1 = fresh_process_logits(&v1_path, backend, 1);
        let from_v2 = fresh_process_logits(&v2_path, backend, 1);
        assert_eq!(
            from_v1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            from_v2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "{backend}: v2 compressed logits diverge from the v1 raw artifact"
        );
    }
    let _ = std::fs::remove_file(&v1_path);
    let _ = std::fs::remove_file(&v2_path);
}
